// TopologySpec: the canonical string grammar (parse/print round-trip,
// property-style over generated specs), rejection of malformed strings,
// and build() equivalence with the materialising make_* generators.
#include "slpdas/wsn/topology_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace slpdas::wsn {
namespace {

void expect_topologies_identical(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (NodeId u = 0; u < a.graph.node_count(); ++u) {
    for (NodeId v : a.graph.neighbors(u)) {
      EXPECT_TRUE(b.graph.has_edge(u, v)) << u << "-" << v;
    }
  }
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.sink, b.sink);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x) << i;
    EXPECT_EQ(a.positions[i].y, b.positions[i].y) << i;
  }
}

TEST(TopologySpecTest, ParsePrintRoundTripsOverGeneratedSpecs) {
  // Property-style sweep over the whole grammar: every generated spec
  // must satisfy parse(to_string(s)) == s, with to_string canonical
  // (printing the reparse changes nothing).
  std::vector<TopologySpec> specs;
  for (const int side : {3, 5, 11, 21, 41}) {
    for (const double spacing : {4.5, 1.0, 25.0, 0.125}) {
      specs.push_back(TopologySpec::grid(side, spacing));
    }
  }
  for (const auto& [w, h] : {std::pair{2, 2}, {15, 31}, {4, 9}, {1, 8}}) {
    specs.push_back(TopologySpec::grid_rect(w, h));
    specs.push_back(TopologySpec::grid_rect(w, h, 2.5));
  }
  for (const int n : {2, 64, 1000}) {
    specs.push_back(TopologySpec::line(n));
    specs.push_back(TopologySpec::line(n, 0.5));
  }
  for (const int n : {3, 100}) {
    specs.push_back(TopologySpec::ring(n));
    specs.push_back(TopologySpec::ring(n, 7.25));
  }
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7},
                                   ~std::uint64_t{0}}) {
    specs.push_back(TopologySpec::unit_disk(400, 10.0, 100.0, seed));
    specs.push_back(TopologySpec::unit_disk(60, 17.5, 80.0, seed));
  }
  {
    TopologySpec attempts = TopologySpec::unit_disk(50, 12.0);
    attempts.max_attempts = 128;
    specs.push_back(attempts);
  }
  for (const TopologySpec& spec : specs) {
    const std::string text = spec.to_string();
    SCOPED_TRACE(text);
    const TopologySpec reparsed = TopologySpec::parse(text);
    EXPECT_EQ(reparsed, spec);
    EXPECT_EQ(reparsed.to_string(), text);  // canonical == idempotent
  }
}

TEST(TopologySpecTest, CanonicalFormDropsDefaultsAndNormalisesShape) {
  // The ISSUE's grammar examples, plus canonicalisation: default-valued
  // options are omitted and a square WxH collapses to the side form.
  EXPECT_EQ(TopologySpec::parse("grid:21").to_string(), "grid:21");
  EXPECT_EQ(TopologySpec::parse("grid:15x31:spacing=4.5").to_string(),
            "grid:15x31");
  EXPECT_EQ(TopologySpec::parse("grid:5x5").to_string(), "grid:5");
  EXPECT_EQ(TopologySpec::parse("grid:21:spacing=5").to_string(),
            "grid:21:spacing=5");
  EXPECT_EQ(TopologySpec::parse("line:64").to_string(), "line:64");
  EXPECT_EQ(TopologySpec::parse("ring:100").to_string(), "ring:100");
  EXPECT_EQ(TopologySpec::parse("udisk:n=400,r=10,seed=7").to_string(),
            "udisk:n=400,r=10,seed=7");
  EXPECT_EQ(TopologySpec::parse("udisk:seed=1,r=15,n=400").to_string(),
            "udisk:n=400,r=15");  // default seed dropped, key order fixed
  EXPECT_EQ(
      TopologySpec::parse("udisk:n=50,r=10,area=60,attempts=32").to_string(),
      "udisk:n=50,r=10,area=60,attempts=32");
}

TEST(TopologySpecTest, RejectsMalformedSpecs) {
  const char* const kBad[] = {
      "",                           // no kind
      "grid",                       // missing size
      "grid:",                      // empty size
      "torus:5",                    // unknown kind
      "grid:4",                     // even square side: no centre sink
      "grid:1",                     // degenerate square
      "grid:-3",                    // negative square side
      "grid:0x5",                   // zero dimension
      "grid:1x1",                   // one node: source == sink
      "grid:5x",                    // missing height
      "grid:5:spacing=0",           // non-positive spacing
      "grid:5:spacing=-2",          // negative spacing
      "grid:5:spacing=abc",         // non-numeric spacing
      "grid:5:width=2",             // unknown option key
      "grid:5:spacing=4.5:extra",   // trailing segment
      "line:1",                     // a line needs 2 nodes
      "ring:2",                     // a ring needs 3 nodes
      "udisk:r=10",                 // missing n
      "udisk:n=1,r=10",             // n < 2
      "udisk:n=40,r=0",             // non-positive range
      "udisk:n=40,r=10,area=0",     // non-positive area
      "udisk:n=40,r=10,seed=-1",    // negative seed
      "udisk:n=40,r=10,attempts=0", // no attempts allowed
      "udisk:n=40,q=2",             // unknown key
      "udisk:n=40,r",               // key without value
      "udisk:n=40,r=10:extra",      // stray segment
  };
  for (const char* text : kBad) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)TopologySpec::parse(text), std::invalid_argument);
  }
  // Factories enforce the same rules as the grammar.
  EXPECT_THROW((void)TopologySpec::grid(4), std::invalid_argument);
  EXPECT_THROW((void)TopologySpec::grid_rect(0, 5, 4.5), std::invalid_argument);
  EXPECT_THROW((void)TopologySpec::line(1), std::invalid_argument);
  EXPECT_THROW((void)TopologySpec::ring(2), std::invalid_argument);
  EXPECT_THROW((void)TopologySpec::unit_disk(1), std::invalid_argument);
}

TEST(TopologySpecTest, BuildMatchesTheMaterialisingGenerators) {
  expect_topologies_identical(TopologySpec::grid(5).build(), make_grid(5));
  expect_topologies_identical(TopologySpec::grid(11, 25.0).build(),
                              make_grid(11, 25.0));
  expect_topologies_identical(
      TopologySpec::grid_rect(4, 9, 4.5).build(),
      make_grid(4, 9, 4.5, std::nullopt, std::nullopt));
  expect_topologies_identical(TopologySpec::line(8).build(), make_line(8));
  expect_topologies_identical(TopologySpec::ring(9, 2.0).build(),
                              make_ring(9, 2.0));
  UnitDiskParams params;
  params.node_count = 30;
  params.area_side = 60.0;
  params.radio_range = 16.0;
  params.seed = 11;
  expect_topologies_identical(
      TopologySpec::parse("udisk:n=30,r=16,area=60,seed=11").build(),
      make_random_unit_disk(params));
  // Building the same spec twice is bit-identical (the deterministic
  // sweep contract: lazy per-cell materialisation must not wobble).
  const TopologySpec udisk =
      TopologySpec::parse("udisk:n=30,r=16,area=60,seed=3");
  expect_topologies_identical(udisk.build(), udisk.build());
}

TEST(TopologySpecTest, NodeCountKnownWithoutBuilding) {
  EXPECT_EQ(TopologySpec::grid(21).node_count(), 441);
  EXPECT_EQ(TopologySpec::grid_rect(15, 31, 4.5).node_count(), 465);
  EXPECT_EQ(TopologySpec::line(64).node_count(), 64);
  EXPECT_EQ(TopologySpec::ring(100).node_count(), 100);
  EXPECT_EQ(TopologySpec::unit_disk(400, 10.0).node_count(), 400);
}

}  // namespace
}  // namespace slpdas::wsn
