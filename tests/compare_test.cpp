// Sweep-document comparison: matched-cell metric deltas, the byte-exact
// drift verdict over the deterministic fields, the explicit
// non-drift-ness of wall clocks and perf telemetry, and the
// --fail-on-drift notion of a clean comparison.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "slpdas/core/compare.hpp"
#include "slpdas/core/sweep.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

/// Two cells along the protocol axis, so compared labels are the
/// protocol names — the shape of a real A/B comparison.
std::vector<SweepCell> two_cells() {
  ExperimentConfig base;
  base.topology = wsn::TopologySpec::grid(5);
  base.parameters = test::fast_parameters(24);
  base.radio = RadioKind::kCasinoLab;
  base.runs = 2;
  base.check_schedules = false;
  SweepGrid grid(base);
  grid.axis("protocol",
            {{"protectionless-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kProtectionlessDas;
              }},
             {"slp-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kSlpDas;
              }}});
  return grid.expand();
}

SweepJson document(bool deterministic = true) {
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 7;
  options.deterministic_timing = deterministic;
  return to_sweep_json(run_sweep(two_cells(), options), "compare_test");
}

std::string rendered(const SweepComparison& comparison) {
  std::ostringstream out;
  render_comparison(out, comparison);
  return out.str();
}

TEST(CompareTest, IdenticalDocumentsAreClean) {
  const SweepJson a = document();
  const SweepComparison comparison = compare_sweeps(a, a);
  EXPECT_FALSE(comparison.identity_differs);
  EXPECT_EQ(comparison.matched, 2u);
  EXPECT_EQ(comparison.drifted, 0u);
  EXPECT_EQ(comparison.only_a, 0u);
  EXPECT_EQ(comparison.only_b, 0u);
  EXPECT_TRUE(comparison.clean());
  const std::string text = rendered(comparison);
  EXPECT_EQ(text.find("DRIFT"), std::string::npos) << text;
  EXPECT_NE(text.find("2 matched cell(s), 0 drifted"), std::string::npos)
      << text;
  // Both headline metrics appear for every matched cell.
  EXPECT_NE(text.find("capture_ratio"), std::string::npos);
  EXPECT_NE(text.find("delivery_ratio.mean"), std::string::npos);
}

TEST(CompareTest, ATamperedResultFieldIsDriftAndNamesTheField) {
  const SweepJson a = document();
  SweepJson b = a;
  b.cells[0].capture_successes += 1;
  const SweepComparison comparison = compare_sweeps(a, b);
  EXPECT_EQ(comparison.drifted, 1u);
  EXPECT_FALSE(comparison.clean());
  ASSERT_FALSE(comparison.cells.empty());
  EXPECT_TRUE(comparison.cells[0].drift);
  EXPECT_EQ(comparison.cells[0].first_difference, "capture_successes");
  EXPECT_NE(rendered(comparison).find("DRIFT"), std::string::npos);
}

TEST(CompareTest, DriftCatchesFieldsTheMetricRowsDoNotShow) {
  // The drift verdict byte-compares the whole neutralised record, so a
  // field with no table row of its own (here a stats block) still trips.
  const SweepJson a = document();
  SweepJson b = a;
  b.cells[1].attacker_moves.mean += 0.5;
  const SweepComparison comparison = compare_sweeps(a, b);
  EXPECT_EQ(comparison.drifted, 1u);
  EXPECT_EQ(comparison.cells[1].first_difference, "attacker_moves");
}

TEST(CompareTest, WallClockAndPerfTelemetryAreNotDrift) {
  // Two real-clock runs of the same sweep differ in walls and perf by
  // construction; compare must never call that drift.
  const SweepJson a = document(/*deterministic=*/false);
  SweepJson b = a;
  b.wall_seconds *= 2.0;
  for (SweepJsonCell& cell : b.cells) {
    cell.wall_seconds += 1.0;
    cell.perf_events += 1234;
    cell.perf_events_per_sec *= 3.0;
  }
  const SweepComparison comparison = compare_sweeps(a, b);
  EXPECT_EQ(comparison.drifted, 0u);
  EXPECT_TRUE(comparison.clean());
  // The non-deterministic events/sec row is shown (both sides carry
  // perf) but never marked DRIFT.
  const std::string text = rendered(comparison);
  EXPECT_NE(text.find("events/sec"), std::string::npos) << text;
  EXPECT_EQ(text.find("DRIFT"), std::string::npos) << text;
}

TEST(CompareTest, UnmatchedCellsAreReportedAndFailCleanliness) {
  const SweepJson a = document();
  SweepJson b = a;
  b.cells.pop_back();
  const SweepComparison comparison = compare_sweeps(a, b);
  EXPECT_EQ(comparison.matched, 1u);
  EXPECT_EQ(comparison.only_a, 1u);
  EXPECT_EQ(comparison.only_b, 0u);
  EXPECT_FALSE(comparison.clean());
  EXPECT_NE(rendered(comparison).find("only in A: "), std::string::npos);

  const SweepComparison reversed = compare_sweeps(b, a);
  EXPECT_EQ(reversed.only_b, 1u);
  EXPECT_FALSE(reversed.clean());
  EXPECT_NE(rendered(reversed).find("only in B: "), std::string::npos);
}

TEST(CompareTest, IdentityMismatchIsFlaggedButNotDriftByItself) {
  // Comparing two seeds ON PURPOSE is legitimate: the identity note
  // fires, but cleanliness rides on the results alone (differing results
  // would show up as drift anyway).
  const SweepJson a = document();
  SweepJson b = a;
  b.base_seed ^= 1;
  b.name = "other_run";
  const SweepComparison comparison = compare_sweeps(a, b);
  EXPECT_TRUE(comparison.identity_differs);
  EXPECT_EQ(comparison.drifted, 0u);
  EXPECT_TRUE(comparison.clean());
  EXPECT_NE(rendered(comparison).find("note: the documents describe "
                                      "different sweeps"),
            std::string::npos);
}

}  // namespace
}  // namespace slpdas::core
