// Tests for the Table I parameter mapping.
#include "slpdas/core/parameters.hpp"

#include <gtest/gtest.h>

namespace slpdas::core {
namespace {

TEST(ParametersTest, DefaultsMatchTableI) {
  const Parameters params;
  EXPECT_DOUBLE_EQ(params.source_period_s, 5.5);
  EXPECT_DOUBLE_EQ(params.slot_period_s, 0.05);
  EXPECT_DOUBLE_EQ(params.dissem_period_s, 0.5);
  EXPECT_EQ(params.slots, 100);
  EXPECT_EQ(params.minimum_setup_periods, 80);
  EXPECT_EQ(params.neighbor_discovery_periods, 4);
  EXPECT_EQ(params.dissemination_timeout, 5);
  EXPECT_EQ(params.search_distance, 3);
  EXPECT_DOUBLE_EQ(params.safety_factor, 1.5);
}

TEST(ParametersTest, FrameMatchesSourcePeriod) {
  const Parameters params;
  // Table I consistency: one TDMA period == the source period.
  EXPECT_EQ(params.frame().period(), sim::from_seconds(params.source_period_s));
}

TEST(ParametersTest, DasConfigCarriesValues) {
  const Parameters params;
  const das::DasConfig config = params.das_config();
  EXPECT_EQ(config.sink_slot, 100);
  EXPECT_EQ(config.minimum_setup_periods, 80);
  EXPECT_EQ(config.neighbor_discovery_periods, 4);
  EXPECT_EQ(config.dissemination_timeout, 5);
}

TEST(ParametersTest, ChangeLengthDefaultsToTableFormula) {
  Parameters params;
  const wsn::Topology grid = wsn::make_grid(11);  // Delta_ss = 10
  params.search_distance = 3;
  EXPECT_EQ(params.resolved_change_length(grid), 7);  // CL = 10 - 3
  params.search_distance = 5;
  EXPECT_EQ(params.resolved_change_length(grid), 5);  // CL = 10 - 5
}

TEST(ParametersTest, ChangeLengthFlooredAtOne) {
  Parameters params;
  params.search_distance = 10;
  const wsn::Topology grid = wsn::make_grid(5);  // Delta_ss = 4
  EXPECT_EQ(params.resolved_change_length(grid), 1);
}

TEST(ParametersTest, ExplicitChangeLengthWins) {
  Parameters params;
  params.change_length = 9;
  EXPECT_EQ(params.resolved_change_length(wsn::make_grid(11)), 9);
  params.change_length = 0;
  EXPECT_THROW((void)params.resolved_change_length(wsn::make_grid(11)),
               std::invalid_argument);
}

TEST(ParametersTest, SlpConfigResolvesSearchStart) {
  Parameters params;
  const auto config = params.slp_config(wsn::make_grid(11));
  EXPECT_EQ(config.search_start_period, 40);  // MSP / 2
  EXPECT_EQ(config.search_distance, 3);
  EXPECT_EQ(config.change_length, 7);
  params.search_start_period = 55;
  EXPECT_EQ(params.slp_config(wsn::make_grid(11)).search_start_period, 55);
}

TEST(ParametersTest, UpperTimeBoundFollowsPaperFormula) {
  const Parameters params;
  // nodes x Psrc x 4: for 121 nodes = 121 * 5.5 * 4 s.
  EXPECT_EQ(params.upper_time_bound(121),
            sim::from_seconds(121 * 5.5 * 4.0));
}

TEST(ParametersTest, InvalidFrameRejected) {
  Parameters params;
  params.slots = 0;
  EXPECT_THROW((void)params.frame(), std::invalid_argument);
  params = {};
  params.slot_period_s = -1.0;
  EXPECT_THROW((void)params.frame(), std::invalid_argument);
}

}  // namespace
}  // namespace slpdas::core
