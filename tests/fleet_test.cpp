// The distributed sweep fabric ("slpdas.shardmap.v1"): shardmap record
// round-trips, the exclusive-create claim protocol, the worker loop
// in-process and across forked processes, and the coordinator's failure
// handling — a worker SIGKILLed mid-cell must have its claim released,
// its cell reassigned to a replacement, and the folded document must
// still be bit-identical to an unsharded single-process run.
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "slpdas/core/fleet.hpp"
#include "slpdas/core/scenario.hpp"
#include "slpdas/core/sweep.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

namespace fs = std::filesystem;

/// Five cheap cells — the cell_stream_test fixture shape, so the fleet's
/// byte-identity claims are checked against the same grid the stream and
/// shard tests use.
std::vector<SweepCell> five_cells() {
  ExperimentConfig base;
  base.topology = wsn::TopologySpec::grid(5);
  base.parameters = test::fast_parameters(24);
  base.radio = RadioKind::kCasinoLab;
  base.runs = 2;
  base.check_schedules = false;
  SweepGrid grid(base);
  std::vector<SweepGrid::AxisValue> values;
  for (int i = 0; i < 5; ++i) {
    values.push_back({std::to_string(i), nullptr});
  }
  grid.axis("cell", std::move(values));
  return grid.expand();
}

Scenario fleet_scenario() {
  Scenario scenario;
  scenario.name = "fleet_test";
  scenario.reference = "test fixture";
  scenario.summary = "five cheap cells";
  scenario.default_runs = 2;
  scenario.default_seed = 77;
  scenario.make_cells = [](const ScenarioOptions&) { return five_cells(); };
  scenario.report = [](std::ostream&, const SweepJson&,
                       const ScenarioOptions&) { return 0; };
  return scenario;
}

std::string to_text(const SweepJson& document) {
  std::ostringstream out;
  write_sweep_json(out, document);
  return out.str();
}

/// The unsharded single-process document every fleet variant must
/// reproduce byte for byte (threads = the fleet's workers x
/// worker_threads, which is 2 in every test here).
std::string reference_text() {
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 77;
  options.deterministic_timing = true;
  return to_text(to_sweep_json(run_sweep(five_cells(), options), "fleet_test"));
}

/// The manifest run_fleet would write for this fixture.
ShardMapManifest fixture_manifest(int workers, int worker_threads) {
  const auto cells = five_cells();
  ShardMapManifest manifest;
  manifest.name = "fleet_test";
  manifest.base_seed = 77;
  manifest.grid_hash = hash_sweep_grid(cells);
  manifest.cells_total = cells.size();
  manifest.deterministic = true;
  manifest.workers = workers;
  manifest.worker_threads = worker_threads;
  manifest.threads_total = workers * worker_threads;
  return manifest;
}

FleetWorkerOptions worker_options(const std::string& dir,
                                  const std::string& worker, int threads) {
  FleetWorkerOptions options;
  options.directory = dir;
  options.worker = worker;
  options.threads = threads;
  options.deterministic = true;
  options.heartbeat_interval_ms = 50;
  options.idle_wait_ms = 5;
  return options;
}

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "slpdas_fleet_" + info->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

// ---------------------------------------------------------------------------
// Shardmap records
// ---------------------------------------------------------------------------

TEST(ShardMapRecordTest, AllRecordKindsRoundTrip) {
  ShardMapManifest manifest;
  manifest.name = "fleet \"quoted\" name";
  manifest.base_seed = 77;
  manifest.grid_hash = 0xdeadbeefULL;
  manifest.cells_total = 5;
  manifest.deterministic = true;
  manifest.workers = 4;
  manifest.worker_threads = 2;
  manifest.threads_total = 8;
  const ShardMapManifest manifest2 =
      parse_shardmap_manifest(format_shardmap_manifest(manifest));
  EXPECT_EQ(manifest2.name, manifest.name);
  EXPECT_EQ(manifest2.base_seed, manifest.base_seed);
  EXPECT_EQ(manifest2.grid_hash, manifest.grid_hash);
  EXPECT_EQ(manifest2.cells_total, manifest.cells_total);
  EXPECT_EQ(manifest2.deterministic, manifest.deterministic);
  EXPECT_EQ(manifest2.workers, manifest.workers);
  EXPECT_EQ(manifest2.worker_threads, manifest.worker_threads);
  EXPECT_EQ(manifest2.threads_total, manifest.threads_total);

  const ShardMapClaim claim2 =
      parse_shardmap_claim(format_shardmap_claim({3, "w0", 1234}));
  EXPECT_EQ(claim2.cell, 3u);
  EXPECT_EQ(claim2.worker, "w0");
  EXPECT_EQ(claim2.pid, 1234);

  const ShardMapDone done2 =
      parse_shardmap_done(format_shardmap_done({4, "w1"}));
  EXPECT_EQ(done2.cell, 4u);
  EXPECT_EQ(done2.worker, "w1");

  const ShardMapHeartbeat beat2 =
      parse_shardmap_heartbeat(format_shardmap_heartbeat({"w2", 99, 41}));
  EXPECT_EQ(beat2.worker, "w2");
  EXPECT_EQ(beat2.pid, 99);
  EXPECT_EQ(beat2.seq, 41u);

  ShardMapError cell_error;
  cell_error.cell = 2;
  cell_error.worker = "w0";
  cell_error.message = "runs threw";
  const ShardMapError cell_error2 =
      parse_shardmap_error(format_shardmap_error(cell_error));
  ASSERT_TRUE(cell_error2.cell.has_value());
  EXPECT_EQ(*cell_error2.cell, 2u);
  EXPECT_EQ(cell_error2.message, "runs threw");

  ShardMapError worker_error;
  worker_error.worker = "w1";
  worker_error.message = "bad manifest";
  const ShardMapError worker_error2 =
      parse_shardmap_error(format_shardmap_error(worker_error));
  EXPECT_FALSE(worker_error2.cell.has_value());
  EXPECT_EQ(worker_error2.worker, "w1");
}

TEST(ShardMapRecordTest, ParsersRejectWrongSchemaOrType) {
  const std::string done = format_shardmap_done({1, "w0"});
  // A done record is not a claim record.
  EXPECT_THROW((void)parse_shardmap_claim(done), std::runtime_error);
  // An alien schema tag.
  EXPECT_THROW((void)parse_shardmap_done(
                   "{\"schema\": \"slpdas.shardmap.v9\", \"type\": \"done\", "
                   "\"cell\": 1, \"worker\": \"w0\"}"),
               std::runtime_error);
  // Not JSON at all.
  EXPECT_THROW((void)parse_shardmap_manifest("not json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Claim directory
// ---------------------------------------------------------------------------

TEST_F(FleetTest, ClaimIsExclusiveUntilReleased) {
  const ClaimDir claims(dir_);
  claims.create();
  ShardMapClaim claim;
  claim.cell = 3;
  claim.worker = "w0";
  claim.pid = 42;
  EXPECT_TRUE(claims.try_claim(claim));
  // The second claimant loses, whoever it says it is.
  claim.worker = "w1";
  EXPECT_FALSE(claims.try_claim(claim));
  // Release (what the coordinator does once w0 is known dead) reopens it.
  claims.release_claim(3);
  EXPECT_TRUE(claims.try_claim(claim));
  EXPECT_FALSE(claims.is_done(3));
  claims.mark_done({3, "w1"});
  EXPECT_TRUE(claims.is_done(3));
}

TEST_F(FleetTest, ScanReportsEveryMarkerKind) {
  const ClaimDir claims(dir_);
  claims.create();
  ASSERT_TRUE(claims.try_claim({0, "w0", 10}));
  ASSERT_TRUE(claims.try_claim({1, "w1", 11}));
  claims.mark_done({1, "w1"});
  claims.write_heartbeat({"w0", 10, 7});
  ShardMapError error;
  error.cell = 4;
  error.worker = "w0";
  error.message = "boom";
  claims.mark_error(error);
  // A claim created by an owner that died before the advisory write: the
  // file exists (the claim holds) but holds no parseable record.
  {
    std::ofstream torn(claims.claim_path(2), std::ios::binary);
    torn << "{\"schema\": \"slpdas.shard";
  }

  const ShardMapScan scan = claims.scan();
  ASSERT_EQ(scan.claims.size(), 2u);
  EXPECT_EQ(scan.claims.at(0).worker, "w0");
  EXPECT_EQ(scan.claims.at(1).worker, "w1");
  EXPECT_EQ(scan.done, std::set<std::uint64_t>{1});
  EXPECT_EQ(scan.unreadable_claims, std::set<std::uint64_t>{2});
  ASSERT_EQ(scan.heartbeats.count("w0"), 1u);
  EXPECT_EQ(scan.heartbeats.at("w0").seq, 7u);
  ASSERT_EQ(scan.errors.size(), 1u);
  EXPECT_EQ(scan.errors[0].message, "boom");
}

TEST_F(FleetTest, ManifestFileRoundTripsAndMarksAFleetDirectory) {
  EXPECT_FALSE(is_fleet_directory(dir_));
  EXPECT_EQ(read_shardmap_manifest(dir_), std::nullopt);
  const ShardMapManifest manifest = fixture_manifest(4, 2);
  write_shardmap_manifest(dir_, manifest);
  EXPECT_TRUE(is_fleet_directory(dir_));
  const std::optional<ShardMapManifest> read = read_shardmap_manifest(dir_);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->name, manifest.name);
  EXPECT_EQ(read->grid_hash, manifest.grid_hash);
  EXPECT_EQ(read->threads_total, manifest.threads_total);
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

TEST_F(FleetTest, LoneWorkerComputesEveryCellByteIdentically) {
  write_shardmap_manifest(dir_, fixture_manifest(1, 2));
  const Scenario scenario = fleet_scenario();
  const std::size_t computed = run_fleet_worker(
      scenario, ScenarioOptions{}, worker_options(dir_, "w0", 2));
  EXPECT_EQ(computed, 5u);
  EXPECT_EQ(to_text(fold_fleet_directory(dir_)), reference_text());
  // Every cell carries a done marker owned by the one worker.
  const ClaimDir claims(dir_);
  const ShardMapScan scan = claims.scan();
  EXPECT_EQ(scan.done.size(), 5u);
  EXPECT_EQ(scan.claims.size(), 5u);
}

TEST_F(FleetTest, WorkerRefusesAManifestForADifferentSweep) {
  ShardMapManifest manifest = fixture_manifest(1, 2);
  manifest.grid_hash ^= 1;  // a different grid expansion
  write_shardmap_manifest(dir_, manifest);
  const Scenario scenario = fleet_scenario();
  EXPECT_THROW((void)run_fleet_worker(scenario, ScenarioOptions{},
                                      worker_options(dir_, "w0", 2)),
               std::runtime_error);
  // The failure left a worker-fatal marker so a coordinator would abort
  // instead of respawning into the same mismatch.
  const ShardMapScan scan = ClaimDir(dir_).scan();
  ASSERT_EQ(scan.errors.size(), 1u);
  EXPECT_EQ(scan.errors[0].worker, "w0");
  EXPECT_FALSE(scan.errors[0].cell.has_value());
}

#ifndef _WIN32

/// Forks a child that runs `body` and _exits with its return value —
/// keeping gtest machinery (and its exit handlers) out of the child.
template <typename Body>
pid_t fork_child(Body body) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    int code = 2;
    try {
      code = body();
    } catch (const std::exception&) {
      code = 1;
    }
    ::_exit(code);
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST_F(FleetTest, TwoForkedWorkersPartitionTheGridByteIdentically) {
  write_shardmap_manifest(dir_, fixture_manifest(2, 1));
  const Scenario scenario = fleet_scenario();
  const std::string dir = dir_;
  std::vector<pid_t> children;
  for (const char* name : {"w0", "w1"}) {
    children.push_back(fork_child([&scenario, &dir, name] {
      (void)run_fleet_worker(scenario, ScenarioOptions{},
                             worker_options(dir, name, 1));
      return 0;
    }));
  }
  for (const pid_t pid : children) {
    EXPECT_EQ(wait_exit(pid), 0);
  }
  EXPECT_EQ(to_text(fold_fleet_directory(dir_)), reference_text());
  // The claim protocol partitioned the grid: every cell ran exactly once,
  // and both incarnations produced a stream file.
  EXPECT_TRUE(fs::is_regular_file(dir_ + "/streams/w0.jsonl"));
  EXPECT_TRUE(fs::is_regular_file(dir_ + "/streams/w1.jsonl"));
  const ShardMapScan scan = ClaimDir(dir_).scan();
  EXPECT_EQ(scan.done.size(), 5u);
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

FleetOptions coordinator_options(const std::string& dir, std::ostream* log) {
  FleetOptions options;
  options.directory = dir;
  options.workers = 1;
  options.worker_threads = 2;
  options.deterministic = true;
  options.heartbeat_interval_ms = 25;
  options.claim_expiry_ms = 2'000;
  options.poll_interval_ms = 5;
  options.log = log;
  return options;
}

/// A spawn hook that forks the REAL worker loop in-process — the
/// coordinator cannot tell the difference from an exec'd binary.
std::int64_t spawn_real_worker(const Scenario& scenario,
                               const FleetSpawnRequest& request,
                               const std::string& dir) {
  return fork_child([&scenario, &request, &dir] {
    (void)run_fleet_worker(scenario, ScenarioOptions{},
                           worker_options(dir, request.worker, 2));
    return 0;
  });
}

TEST_F(FleetTest, SigkilledWorkerIsReassignedAndTheFoldStaysByteIdentical) {
  const Scenario scenario = fleet_scenario();
  std::ostringstream log;
  FleetOptions options = coordinator_options(dir_, &log);
  const std::string dir = dir_;
  int spawns = 0;
  options.spawn = [&](const FleetSpawnRequest& request) -> std::int64_t {
    if (++spawns > 1) {
      return spawn_real_worker(scenario, request, dir);
    }
    // First incarnation is the victim: it claims cell 0, writes a valid
    // stream header plus a TORN record tail (exactly what a kill lands
    // mid-write), then SIGKILLs itself without ever marking the cell
    // done. The claim must be released and the cell recomputed by the
    // replacement, and the torn tail must not reach the fold.
    return fork_child([&request, &dir] {
      const std::optional<ShardMapManifest> manifest =
          read_shardmap_manifest(dir);
      if (!manifest) {
        return 3;
      }
      const ClaimDir claims(dir);
      if (!claims.try_claim({0, request.worker, ::getpid()})) {
        return 4;
      }
      std::ofstream stream(dir + "/streams/" + request.worker + ".jsonl",
                           std::ios::binary);
      CellStreamHeader header;
      header.name = manifest->name;
      header.base_seed = manifest->base_seed;
      header.grid_hash = manifest->grid_hash;
      header.shard_index = 0;
      header.shard_count = 1;
      header.cells_total = manifest->cells_total;
      header.deterministic = manifest->deterministic;
      header.threads = 2;
      write_cell_stream_header(stream, header);
      stream << "{\"index\": 0, \"label\": \"cell=0\", \"coordi";
      stream.flush();
      (void)::raise(SIGKILL);
      return 5;  // unreachable
    });
  };

  const SweepJson document = run_fleet(scenario, ScenarioOptions{}, options);
  EXPECT_EQ(to_text(document), reference_text());
  EXPECT_EQ(spawns, 2);
  const std::string events = log.str();
  EXPECT_NE(events.find("worker w0 died"), std::string::npos) << events;
  EXPECT_NE(events.find("released 1 claim(s)"), std::string::npos) << events;
  EXPECT_NE(events.find("respawned replacement for w0"), std::string::npos)
      << events;
  // Both incarnations left streams; the folded bytes above prove the
  // victim's torn tail was dropped and cell 0 recomputed bit-identically.
  EXPECT_TRUE(fs::is_regular_file(dir_ + "/streams/w0.jsonl"));
  EXPECT_TRUE(fs::is_regular_file(dir_ + "/streams/w1.jsonl"));
}

TEST_F(FleetTest, AnErrorMarkerAbortsTheFleetAndKillsTheWorkers) {
  const Scenario scenario = fleet_scenario();
  // A pre-existing cell error: some worker already proved the cell fails
  // deterministically, so the coordinator must abort, not respawn.
  {
    const ClaimDir claims(dir_);
    claims.create();
    ShardMapError error;
    error.cell = 2;
    error.worker = "w9";
    error.message = "cell runs threw";
    claims.mark_error(error);
  }
  std::ostringstream log;
  FleetOptions options = coordinator_options(dir_, &log);
  options.spawn = [](const FleetSpawnRequest&) -> std::int64_t {
    // A worker that never makes progress; the coordinator must kill it.
    return fork_child([] {
      for (;;) {
        ::pause();
      }
      return 0;
    });
  };
  try {
    (void)run_fleet(scenario, ScenarioOptions{}, options);
    FAIL() << "run_fleet accepted a fleet with an error marker";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("aborted"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("cell 2"), std::string::npos)
        << error.what();
  }
}

TEST_F(FleetTest, ResumingACompletedFleetFoldsWithoutSpawningAnyWorker) {
  // Complete the sweep through the worker loop alone...
  write_shardmap_manifest(dir_, fixture_manifest(1, 2));
  const Scenario scenario = fleet_scenario();
  (void)run_fleet_worker(scenario, ScenarioOptions{},
                         worker_options(dir_, "w0", 2));
  // ...then a coordinator over the same directory has nothing to do.
  std::ostringstream log;
  FleetOptions options = coordinator_options(dir_, &log);
  int spawns = 0;
  options.spawn = [&spawns](const FleetSpawnRequest&) -> std::int64_t {
    ++spawns;
    return -1;
  };
  const SweepJson document = run_fleet(scenario, ScenarioOptions{}, options);
  EXPECT_EQ(spawns, 0);
  EXPECT_EQ(to_text(document), reference_text());
  EXPECT_NE(log.str().find("resuming existing fleet directory"),
            std::string::npos);
}

TEST_F(FleetTest, RefusesToResumeADirectoryHoldingADifferentSweep) {
  ShardMapManifest manifest = fixture_manifest(1, 2);
  manifest.base_seed = 78;  // same scenario, different seed
  write_shardmap_manifest(dir_, manifest);
  const Scenario scenario = fleet_scenario();
  FleetOptions options = coordinator_options(dir_, nullptr);
  int spawns = 0;
  options.spawn = [&spawns](const FleetSpawnRequest&) -> std::int64_t {
    ++spawns;
    return -1;
  };
  EXPECT_THROW((void)run_fleet(scenario, ScenarioOptions{}, options),
               std::runtime_error);
  EXPECT_EQ(spawns, 0);
}

#endif  // !_WIN32

TEST_F(FleetTest, RunFleetValidatesItsOptions) {
  const Scenario scenario = fleet_scenario();
  FleetOptions options;
  options.directory = "";
  EXPECT_THROW((void)run_fleet(scenario, ScenarioOptions{}, options),
               std::invalid_argument);
  options.directory = dir_;
  options.workers = 0;
  EXPECT_THROW((void)run_fleet(scenario, ScenarioOptions{}, options),
               std::invalid_argument);
  options.workers = 1;
  options.worker_threads = 0;
  EXPECT_THROW((void)run_fleet(scenario, ScenarioOptions{}, options),
               std::invalid_argument);

  FleetWorkerOptions worker;
  worker.directory = dir_;
  worker.worker = "not a valid name";
  EXPECT_THROW(
      (void)run_fleet_worker(scenario, ScenarioOptions{}, worker),
      std::invalid_argument);
}

}  // namespace
}  // namespace slpdas::core
