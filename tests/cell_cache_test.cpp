// Content-addressed cell result cache ("slpdas.cachecell.v1").
// Covers the canonical key (every identity field feeds the hash, the
// parameter digest covers the config fields outside the four specs),
// store/lookup round-trips, validation-on-read (corrupt, truncated and
// mis-keyed entries are rejected and recomputed, never trusted),
// read-only mode, concurrent writers, scan/gc maintenance, and the
// sweep-engine integration: a warm rerun is byte-identical to the cold
// run with zero recomputes, composing with sharding and streaming.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "slpdas/core/cell_cache.hpp"
#include "slpdas/core/scenario.hpp"
#include "slpdas/core/sweep.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

/// A cheap, fully-specified experiment config (the same shape the cell
/// stream tests use) every key/derivation test starts from.
ExperimentConfig cheap_config() {
  ExperimentConfig config;
  config.topology = wsn::TopologySpec::grid(5);
  config.parameters = test::fast_parameters(24);
  config.radio = RadioKind::kCasinoLab;
  config.runs = 2;
  config.check_schedules = false;
  return config;
}

std::vector<SweepCell> two_cells() {
  SweepGrid grid(cheap_config());
  grid.axis("cell", {{"0", nullptr}, {"1", nullptr}});
  return grid.expand();
}

SweepOptions deterministic_options() {
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 77;
  options.deterministic_timing = true;
  return options;
}

std::string to_text(const SweepJson& document) {
  std::ostringstream out;
  write_sweep_json(out, document);
  return out.str();
}

std::string cell_text(const SweepJsonCell& cell) {
  std::ostringstream out;
  write_cell_stream_record(out, cell);
  return out.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

TEST(CellCacheKeyTest, KeyIsAPureFunctionOfTheConfig) {
  const CellCacheKey a = make_cell_cache_key(cheap_config(), 42, true);
  const CellCacheKey b = make_cell_cache_key(cheap_config(), 42, true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.material(), b.material());
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 16u);
  EXPECT_EQ(a.cell_seed, 42u);
  EXPECT_EQ(a.runs, 2);
  EXPECT_TRUE(a.deterministic);
  // The material carries the schema line and every identity field, so
  // the hash preimage is self-describing.
  EXPECT_NE(a.material().find("slpdas.cachecell.v1"), std::string::npos);
  EXPECT_NE(a.material().find("cell_seed=42"), std::string::npos);
}

TEST(CellCacheKeyTest, EveryIdentityFieldFeedsTheHash) {
  const CellCacheKey base = make_cell_cache_key(cheap_config(), 42, true);
  const auto differs = [&base](CellCacheKey mutated) {
    EXPECT_NE(mutated.material(), base.material());
    EXPECT_NE(mutated.hash(), base.hash());
  };
  CellCacheKey k = base;
  k.topology = "grid:7";
  differs(k);
  k = base;
  k.protocol += "-other";
  differs(k);
  k = base;
  k.attacker += "-other";
  differs(k);
  k = base;
  k.radio += "-other";
  differs(k);
  k = base;
  k.parameters += ",extra=1";
  differs(k);
  k = base;
  k.cell_seed ^= 1;
  differs(k);
  k = base;
  k.runs += 1;
  differs(k);
  k = base;
  k.deterministic = false;
  differs(k);
}

TEST(CellCacheKeyTest, ParameterDigestCoversConfigOutsideTheSpecs) {
  // The four spec strings do not carry the Table I parameters, the
  // schedule-checking switch or the casino-lab burst model; all of them
  // change results, so all of them must change the digest (and no spec
  // string changes with them — that is exactly why the digest exists).
  const ExperimentConfig base = cheap_config();
  const std::string digest = format_parameter_digest(base);
  const auto differs = [&](ExperimentConfig mutated) {
    EXPECT_NE(format_parameter_digest(mutated), digest);
  };
  ExperimentConfig c = base;
  c.parameters.safety_factor = 2.0;
  differs(c);
  c = base;
  c.parameters.slots += 1;
  differs(c);
  c = base;
  c.parameters.search_distance += 1;
  differs(c);
  c = base;
  c.parameters.change_length = 9;
  differs(c);
  c = base;
  c.check_schedules = !base.check_schedules;
  differs(c);
  c = base;
  c.casino.burst_loss += 0.01;
  differs(c);
}

// ---------------------------------------------------------------------------
// Store / lookup on a directory
// ---------------------------------------------------------------------------

class CellCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "cell_cache_test_dir";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A plausible record matching `key` (the engine only caches cells it
  /// computed, but validation never needs a real simulation behind one).
  static SweepJsonCell record_for(const CellCacheKey& key) {
    SweepJsonCell cell;
    cell.index = 3;
    cell.label = "cell=3";
    cell.coordinates = {{"cell", "3"}};
    cell.cell_seed = key.cell_seed;
    cell.runs = key.runs;
    cell.has_config = true;
    cell.config_topology = key.topology;
    cell.config_protocol = key.protocol;
    cell.config_attacker = key.attacker;
    cell.config_radio = key.radio;
    cell.capture_trials = static_cast<std::uint64_t>(key.runs);
    cell.capture_successes = 1;
    cell.capture_ratio = 0.5;
    return cell;
  }

  std::string dir_;
};

TEST_F(CellCacheTest, MissThenStoreThenHit) {
  CellCache cache(dir_);
  const CellCacheKey key = make_cell_cache_key(cheap_config(), 42, true);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  const SweepJsonCell stored = record_for(key);
  EXPECT_TRUE(cache.store(key, stored));
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_TRUE(std::filesystem::exists(cache.entry_path(key)));

  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cell_text(*hit), cell_text(stored));
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different key never sees that entry.
  EXPECT_FALSE(
      cache.lookup(make_cell_cache_key(cheap_config(), 43, true)).has_value());
}

TEST_F(CellCacheTest, RejectsCorruptTruncatedAndMiskeyedEntries) {
  CellCache cache(dir_);
  const CellCacheKey key = make_cell_cache_key(cheap_config(), 42, true);
  ASSERT_TRUE(cache.store(key, record_for(key)));
  const std::string path = cache.entry_path(key);
  const std::string good = slurp(path);

  const auto expect_rejected = [&](const std::string& content) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << content;
    }
    CellCache fresh(dir_);
    EXPECT_FALSE(fresh.lookup(key).has_value()) << content.substr(0, 40);
    EXPECT_EQ(fresh.stats().rejected, 1u);
    EXPECT_EQ(fresh.stats().hits, 0u);
  };

  expect_rejected(good + "trailing garbage\n");       // extra line
  expect_rejected(good.substr(0, good.size() / 2));   // torn write
  expect_rejected("not json at all\n{}\n");           // unparseable header
  expect_rejected("");                                // empty file
  // A record stored under a DIFFERENT key (a renamed file, say) fails
  // identity validation even though both lines parse.
  const CellCacheKey other = make_cell_cache_key(cheap_config(), 43, true);
  {
    CellCache fresh(dir_);
    ASSERT_TRUE(fresh.store(other, record_for(other)));
  }
  std::filesystem::copy_file(
      cache.entry_path(other), path,
      std::filesystem::copy_options::overwrite_existing);
  {
    CellCache fresh(dir_);
    EXPECT_FALSE(fresh.lookup(key).has_value());
    EXPECT_EQ(fresh.stats().rejected, 1u);
  }
  // A rejected entry is recomputable: storing overwrites it cleanly.
  {
    CellCache fresh(dir_);
    ASSERT_TRUE(fresh.store(key, record_for(key)));
    EXPECT_TRUE(fresh.lookup(key).has_value());
  }
}

TEST_F(CellCacheTest, ReadOnlyCacheNeverWrites) {
  const CellCacheKey key = make_cell_cache_key(cheap_config(), 42, true);
  // Read-only over a missing directory is a legal always-miss cache —
  // nothing is created.
  {
    CellCache cache(dir_, /*read_only=*/true);
    EXPECT_TRUE(cache.read_only());
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_FALSE(cache.store(key, record_for(key)));
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_FALSE(std::filesystem::exists(dir_));
  }
  // Read-only over a populated directory serves hits but stays inert.
  {
    CellCache writable(dir_);
    ASSERT_TRUE(writable.store(key, record_for(key)));
  }
  CellCache cache(dir_, /*read_only=*/true);
  EXPECT_TRUE(cache.lookup(key).has_value());
  const CellCacheKey other = make_cell_cache_key(cheap_config(), 43, true);
  EXPECT_FALSE(cache.store(other, record_for(other)));
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(other)));
}

TEST_F(CellCacheTest, ConcurrentWritersOfOneKeyAreSafe) {
  // The sweep engine stores from its workers; two processes may also race
  // on one key. Both write the same canonical bytes through unique tmp
  // files + atomic rename, so the surviving entry is always whole.
  CellCache cache(dir_);
  const CellCacheKey key = make_cell_cache_key(cheap_config(), 42, true);
  const SweepJsonCell record = record_for(key);
  std::vector<std::thread> writers;
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&cache, &key, &record] {
      for (int j = 0; j < 25; ++j) {
        (void)cache.store(key, record);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  EXPECT_EQ(cache.stats().store_failures, 0u);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cell_text(*hit), cell_text(record));
  const CellCacheScanReport scan = scan_cell_cache(dir_);
  EXPECT_EQ(scan.valid, 1u);
  EXPECT_EQ(scan.invalid, 0u);
  EXPECT_TRUE(scan.temp_files.empty());
}

TEST_F(CellCacheTest, ScanAndGcSeparateValidInvalidAndForeignFiles) {
  CellCache cache(dir_);
  const CellCacheKey key = make_cell_cache_key(cheap_config(), 42, true);
  ASSERT_TRUE(cache.store(key, record_for(key)));
  const CellCacheKey bad = make_cell_cache_key(cheap_config(), 43, true);
  ASSERT_TRUE(cache.store(bad, record_for(bad)));
  {
    std::ofstream out(cache.entry_path(bad),
                      std::ios::binary | std::ios::app);
    out << "trailing garbage\n";
  }
  const std::string tmp_path =
      cache.entry_path(key) + ".tmp.123.deadbeef";
  {
    std::ofstream out(tmp_path, std::ios::binary);
    out << "half-written";
  }
  const std::string foreign = dir_ + "/notes.txt";
  {
    std::ofstream out(foreign, std::ios::binary);
    out << "operator notes — not the cache's to manage";
  }

  const CellCacheScanReport scan = scan_cell_cache(dir_);
  EXPECT_EQ(scan.entries.size(), 2u);
  EXPECT_EQ(scan.valid, 1u);
  EXPECT_EQ(scan.invalid, 1u);
  EXPECT_EQ(scan.temp_files.size(), 1u);

  const CellCacheGcReport gc = gc_cell_cache(dir_);
  EXPECT_EQ(gc.removed_invalid, 1u);
  EXPECT_EQ(gc.removed_temp, 1u);
  EXPECT_GT(gc.reclaimed_bytes, 0u);
  EXPECT_TRUE(std::filesystem::exists(cache.entry_path(key)));
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(bad)));
  EXPECT_FALSE(std::filesystem::exists(tmp_path));
  EXPECT_TRUE(std::filesystem::exists(foreign));

  const CellCacheScanReport after = scan_cell_cache(dir_);
  EXPECT_EQ(after.valid, 1u);
  EXPECT_EQ(after.invalid, 0u);
  EXPECT_TRUE(after.temp_files.empty());
}

TEST_F(CellCacheTest, ScanThrowsOnAMissingDirectory) {
  EXPECT_THROW((void)scan_cell_cache(dir_ + "/nope"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Sweep-engine integration
// ---------------------------------------------------------------------------

class SweepCacheTest : public CellCacheTest {};

TEST_F(SweepCacheTest, WarmRerunIsBitIdenticalWithZeroRecomputes) {
  const auto cells = two_cells();
  const std::string reference =
      to_text(to_sweep_json(run_sweep(cells, deterministic_options()), "t"));

  SweepOptions options = deterministic_options();
  CellCache cold(dir_);
  options.cache = &cold;
  const std::string first =
      to_text(to_sweep_json(run_sweep(cells, options), "t"));
  EXPECT_EQ(first, reference);  // caching never changes the document
  EXPECT_EQ(cold.stats().hits, 0u);
  EXPECT_EQ(cold.stats().misses, cells.size());
  EXPECT_EQ(cold.stats().stores, cells.size());

  CellCache warm(dir_);
  options.cache = &warm;
  const std::string second =
      to_text(to_sweep_json(run_sweep(cells, options), "t"));
  EXPECT_EQ(second, reference);
  EXPECT_EQ(warm.stats().hits, cells.size());
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm.stats().stores, 0u);
}

TEST_F(SweepCacheTest, ACorruptEntryIsRecomputedNotTrusted) {
  const auto cells = two_cells();
  SweepOptions options = deterministic_options();
  CellCache cold(dir_);
  options.cache = &cold;
  const std::string reference =
      to_text(to_sweep_json(run_sweep(cells, options), "t"));

  // Corrupt one entry in place (flip the payload line's tail).
  const CellCacheScanReport scan = scan_cell_cache(dir_);
  ASSERT_EQ(scan.valid, 2u);
  {
    std::ofstream out(scan.entries.front().path,
                      std::ios::binary | std::ios::app);
    out << "x";
  }

  CellCache warm(dir_);
  options.cache = &warm;
  const std::string rerun =
      to_text(to_sweep_json(run_sweep(cells, options), "t"));
  EXPECT_EQ(rerun, reference);
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(warm.stats().rejected, 1u);
  EXPECT_EQ(warm.stats().stores, 1u);  // the recompute repaired the entry
  EXPECT_EQ(scan_cell_cache(dir_).valid, 2u);
}

TEST_F(SweepCacheTest, HitsComposeWithShardingBitForBit) {
  const auto cells = two_cells();
  const std::string reference =
      to_text(to_sweep_json(run_sweep(cells, deterministic_options()), "t"));

  // Warm the cache with an unsharded run, then serve each shard from it:
  // shard documents must stay bit-identical to uncached shards, so the
  // merge reproduces the unsharded document.
  {
    SweepOptions options = deterministic_options();
    CellCache cold(dir_);
    options.cache = &cold;
    (void)run_sweep(cells, options);
  }
  std::vector<SweepJson> shards;
  for (int i = 0; i < 2; ++i) {
    SweepOptions options = deterministic_options();
    options.shard_index = i;
    options.shard_count = 2;
    CellCache warm(dir_);
    options.cache = &warm;
    shards.push_back(to_sweep_json(run_sweep(cells, options), "t"));
    EXPECT_EQ(warm.stats().hits, 1u);
    EXPECT_EQ(warm.stats().misses, 0u);
  }
  EXPECT_EQ(to_text(merge_sweep_shards(std::move(shards))), reference);
}

TEST_F(SweepCacheTest, HitsAreStreamedLikeComputedCells) {
  // Through run_scenario with a stream file: the warm run's stream must
  // be byte-identical to the cold run's, so resumes and folds cannot tell
  // a cache hit from a simulation.
  Scenario scenario;
  scenario.name = "cell_cache_test";
  scenario.reference = "test fixture";
  scenario.summary = "two cheap cells";
  scenario.default_runs = 2;
  scenario.default_seed = 77;
  scenario.make_cells = [](const ScenarioOptions&) { return two_cells(); };
  scenario.report = [](std::ostream&, const SweepJson&,
                       const ScenarioOptions&) { return 0; };

  const std::string cold_stream = ::testing::TempDir() + "cache_cold.jsonl";
  const std::string warm_stream = ::testing::TempDir() + "cache_warm.jsonl";
  std::remove(cold_stream.c_str());
  std::remove(warm_stream.c_str());
  // One worker: computed records land in the stream in completion order,
  // which only equals the probe (grid) order the warm run uses when the
  // cold run is serial — the byte comparison below needs that.
  ThreadPool pool(1);

  ScenarioExecution execution;
  execution.deterministic_timing = true;
  CellCache cold(dir_);
  execution.cache = &cold;
  execution.stream_path = cold_stream;
  const SweepJson cold_doc =
      run_scenario(scenario, ScenarioOptions{}, execution, pool);
  EXPECT_EQ(cold.stats().stores, 2u);

  CellCache warm(dir_);
  execution.cache = &warm;
  execution.stream_path = warm_stream;
  const SweepJson warm_doc =
      run_scenario(scenario, ScenarioOptions{}, execution, pool);
  EXPECT_EQ(warm.stats().hits, 2u);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(to_text(warm_doc), to_text(cold_doc));
  EXPECT_EQ(slurp(warm_stream), slurp(cold_stream));
  std::remove(cold_stream.c_str());
  std::remove(warm_stream.c_str());
}

TEST_F(SweepCacheTest, AHitGraftsTheCurrentGridsPositionOntoTheRecord) {
  // Two grids over the SAME experiment (equal seed_label, so equal
  // cell_seed and equal key) but different display labels: the second
  // grid's document must carry ITS labels, served from the first grid's
  // stored result.
  const auto make = [](const std::string& axis) {
    SweepGrid grid(cheap_config());
    grid.axis(axis, {{"0", nullptr}});
    std::vector<SweepCell> cells = grid.expand();
    cells.front().seed_label = "shared";
    return cells;
  };
  SweepOptions options = deterministic_options();
  CellCache cold(dir_);
  options.cache = &cold;
  (void)run_sweep(make("cell"), options);
  ASSERT_EQ(cold.stats().stores, 1u);

  CellCache warm(dir_);
  options.cache = &warm;
  const SweepJson renamed =
      to_sweep_json(run_sweep(make("renamed"), options), "t");
  EXPECT_EQ(warm.stats().hits, 1u);
  ASSERT_EQ(renamed.cells.size(), 1u);
  EXPECT_EQ(renamed.cells.front().label, "renamed=0");
  ASSERT_EQ(renamed.cells.front().coordinates.size(), 1u);
  EXPECT_EQ(renamed.cells.front().coordinates.front().first, "renamed");
}

}  // namespace
}  // namespace slpdas::core
