// Pins the batched execution contract (run_batch.hpp): hoisting the
// run-invariant state of a cell out of the per-seed loop must not change
// a single output bit.
//
//   * For every registered scenario, the batched sweep document and the
//     SweepOptions::unbatched one serialise to identical bytes (same FNV
//     fingerprint the golden tests pin).
//   * RunBatch::run_one(seed) equals run_single(config, topology, seed)
//     for every seed, in any execution order — each run owns its seed's
//     whole RNG stream, so batch-mates cannot bleed randomness into each
//     other.
//   * run_range slices compose: any partition of [0, runs) into ranges
//     yields the same dense results as one range or as seed-by-seed
//     run_one calls.
//   * RunBatch::Fork — one Simulator replayed through reset_run — equals
//     cold construction for every registered scenario's cells, in any
//     seed order, including replaying a seed the fork already ran.
#include "slpdas/core/run_batch.hpp"

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "slpdas/core/scenario.hpp"
#include "slpdas/rng.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

std::uint64_t fnv1a_bytes(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Field-by-field equality over the whole RunResult, exact on doubles.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.captured, b.captured);
  EXPECT_EQ(a.capture_time_s.has_value(), b.capture_time_s.has_value());
  if (a.capture_time_s && b.capture_time_s) {
    EXPECT_EQ(*a.capture_time_s, *b.capture_time_s);
  }
  EXPECT_EQ(a.safety_periods, b.safety_periods);
  EXPECT_EQ(a.source_sink_distance, b.source_sink_distance);
  EXPECT_EQ(a.schedule_complete, b.schedule_complete);
  EXPECT_EQ(a.weak_das_ok, b.weak_das_ok);
  EXPECT_EQ(a.strong_das_ok, b.strong_das_ok);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.delivery_latency_s, b.delivery_latency_s);
  EXPECT_EQ(a.control_messages_per_node, b.control_messages_per_node);
  EXPECT_EQ(a.normal_messages_per_node, b.normal_messages_per_node);
  EXPECT_EQ(a.attacker_moves, b.attacker_moves);
}

ExperimentConfig small_config(ProtocolKind protocol) {
  ExperimentConfig config;
  config.topology = wsn::TopologySpec::grid(5);
  config.protocol = protocol;
  config.parameters = test::fast_parameters(24);
  config.radio = RadioKind::kCasinoLab;
  config.runs = 6;
  config.base_seed = 2017;
  return config;
}

TEST(RunBatchTest, BatchedSweepMatchesUnbatchedForEveryScenario) {
  // The whole registry, smoke-sized but multi-run, through both
  // scheduling paths of run_sweep. Byte equality of the serialised
  // documents is the same bar the golden fingerprint tests set, so any
  // divergence hoisting introduced — a stale config field, an RNG draw
  // moved across runs — fails here naming the scenario.
  ScenarioRegistry registry;
  register_builtin_scenarios(registry);

  ScenarioOptions scenario_options;
  scenario_options.smoke = true;
  scenario_options.runs = 3;  // exercise real per-cell seed ranges
  ThreadPool pool(3);

  for (const Scenario& scenario : registry.scenarios()) {
    SCOPED_TRACE(scenario.name);
    const std::vector<SweepCell> cells =
        scenario.make_cells(scenario_options);
    ASSERT_FALSE(cells.empty());

    SweepOptions options;
    options.threads = 3;
    options.base_seed = scenario.resolved_seed(scenario_options);
    options.deterministic_timing = true;

    std::ostringstream batched;
    write_sweep_json(batched, run_sweep(cells, options, pool),
                     scenario.name);
    options.unbatched = true;
    std::ostringstream unbatched;
    write_sweep_json(unbatched, run_sweep(cells, options, pool),
                     scenario.name);

    EXPECT_EQ(batched.str(), unbatched.str());
    EXPECT_EQ(fnv1a_bytes(batched.str()), fnv1a_bytes(unbatched.str()));
  }
}

TEST(RunBatchTest, RunOneMatchesRunSingleInAnyOrder) {
  // Seed isolation: a batch executes seeds against shared hoisted state,
  // so each run's randomness must come only from its own seed — never
  // from batch construction or from whichever seeds ran before it.
  // run_one must therefore reproduce run_single exactly even when the
  // seeds execute in a different order than the unbatched engine used.
  for (const ProtocolKind protocol :
       {ProtocolKind::kProtectionlessDas, ProtocolKind::kSlpDas,
        ProtocolKind::kPhantomRouting}) {
    SCOPED_TRACE(static_cast<int>(protocol));
    const ExperimentConfig config = small_config(protocol);
    const wsn::Topology topology = config.topology.build();

    std::vector<std::uint64_t> seeds;
    for (int run = 0; run < config.runs; ++run) {
      seeds.push_back(derive_seed(config.base_seed, run));
    }
    std::vector<RunResult> expected;
    for (const std::uint64_t seed : seeds) {
      expected.push_back(run_single(config, topology, seed));
    }

    const RunBatch batch(config, topology);
    // Reversed, then interleaved odd/even — both must be order-blind.
    for (int run = config.runs - 1; run >= 0; --run) {
      expect_identical(batch.run_one(seeds[run]), expected[run]);
    }
    for (int parity : {1, 0}) {
      for (int run = parity; run < config.runs; run += 2) {
        expect_identical(batch.run_one(seeds[run]), expected[run]);
      }
    }
  }
}

TEST(RunBatchTest, ForkMatchesColdConstructionForEveryScenario) {
  // The fork path reuses one warm Simulator across seeds via reset_run;
  // the cold path (run_one) constructs a fresh one per seed. Any per-run
  // state reset_run fails to rewind — a live timer generation, an arena
  // span still holding the previous seed's values, a stale attacker
  // position — diverges here, naming the scenario, cell and seed. Seeds
  // run out of order and one is replayed through the already-used fork,
  // so "warm" covers both fresh-after-reset and ran-before states.
  ScenarioRegistry registry;
  register_builtin_scenarios(registry);

  ScenarioOptions scenario_options;
  scenario_options.smoke = true;
  scenario_options.runs = 3;

  for (const Scenario& scenario : registry.scenarios()) {
    SCOPED_TRACE(scenario.name);
    const std::vector<SweepCell> cells =
        scenario.make_cells(scenario_options);
    ASSERT_FALSE(cells.empty());
    const std::uint64_t base_seed = scenario.resolved_seed(scenario_options);

    for (const SweepCell& cell : cells) {
      SCOPED_TRACE(cell.label);
      const wsn::Topology topology = cell.config.topology.build();
      const RunBatch batch(cell.config, topology);

      std::vector<std::uint64_t> seeds;
      std::vector<RunResult> cold;
      for (int run = 0; run < scenario_options.runs; ++run) {
        seeds.push_back(derive_seed(base_seed, run));
        cold.push_back(batch.run_one(seeds.back()));
      }

      RunBatch::Fork fork(batch);
      for (const int run : {2, 0, 1, 0}) {
        SCOPED_TRACE(run);
        expect_identical(fork.run(seeds[static_cast<std::size_t>(run)]),
                         cold[static_cast<std::size_t>(run)]);
      }
    }
  }
}

TEST(RunBatchTest, RunRangeSlicesComposeExactly) {
  // The sweep engine splits a cell's [0, runs) across workers only when
  // cells are scarce, so the same cell may execute as one slice or many
  // depending on thread count. Every partition must write the same dense
  // results.
  const ExperimentConfig config = small_config(ProtocolKind::kSlpDas);
  const wsn::Topology topology = config.topology.build();
  const RunBatch batch(config, topology);

  std::vector<RunResult> whole(config.runs);
  batch.run_range(config.base_seed, 0, config.runs, whole.data());

  for (const RunResult& result : whole) {
    EXPECT_GT(result.safety_periods, 0.0);
  }

  std::vector<RunResult> seedwise;
  for (int run = 0; run < config.runs; ++run) {
    seedwise.push_back(
        batch.run_one(derive_seed(config.base_seed, run)));
  }

  const int boundaries[][2] = {{0, 2}, {2, 3}, {3, 6}};
  std::vector<RunResult> sliced(config.runs);
  for (const auto& range : boundaries) {
    batch.run_range(config.base_seed, range[0], range[1],
                    sliced.data() + range[0]);
  }

  for (int run = 0; run < config.runs; ++run) {
    SCOPED_TRACE(run);
    expect_identical(whole[run], seedwise[run]);
    expect_identical(whole[run], sliced[run]);
  }
}

}  // namespace
}  // namespace slpdas::core
