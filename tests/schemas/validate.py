#!/usr/bin/env python3
"""Validate slpdas JSON documents against the versioned schema files.

This is the CI-side mirror of the C++ subset validator in
tests/schema_validator.hpp; both implement the same JSON-Schema subset
(type, const, enum, required, properties, additionalProperties, items,
minItems/maxItems, minimum, minLength/maxLength, definitions and $ref —
including refs across schema files in the same directory). Keep the two
in sync: the C++ side is the one exercised by schema_test, this one is
what CI actually runs against generated artifacts.

Usage:
  validate.py SCHEMA.json FILE...
      Validate each FILE (a whole JSON document) against SCHEMA. The
      schema argument may carry a fragment ('SCHEMA.json#/definitions/done')
      to validate whole files against one definition — how CI checks the
      single-record fleet marker files.

  validate.py SCHEMA.json --lines HEADER_REF RECORD_REF FILE...
      Treat each FILE as JSONL: line 1 validates against the schema
      fragment HEADER_REF (e.g. '#/definitions/header'), every later
      non-empty line against RECORD_REF.

Exit status: 0 all documents valid, 1 violations found, 2 usage/IO error.
"""

import json
import os
import sys

_SCALARS = (str, int, float, bool, type(None))


class SchemaSet:
    """Loads schema files from one directory and resolves $refs."""

    def __init__(self, directory):
        self.directory = directory
        self._cache = {}

    def load(self, name):
        if name not in self._cache:
            path = os.path.join(self.directory, name)
            with open(path, encoding="utf-8") as handle:
                self._cache[name] = json.load(handle)
        return self._cache[name]

    def resolve(self, ref, current_file):
        """Returns (schema_fragment, owning_file) for a $ref string."""
        file_part, _, pointer = ref.partition("#")
        owner = file_part or current_file
        node = self.load(owner)
        for step in pointer.strip("/").split("/"):
            if step:
                node = node[step]
        return node, owner

    def validate(self, value, ref, path="$"):
        schema, owner = self.resolve(ref, current_file=None)
        errors = []
        self._check(value, schema, owner, path, errors)
        return errors

    def _check(self, value, schema, owner, path, errors):
        if "$ref" in schema:
            schema, owner = self.resolve(schema["$ref"], owner)
            self._check(value, schema, owner, path, errors)
            return

        if "const" in schema and value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, "
                          f"got {value!r}")
        if "enum" in schema and value not in schema["enum"]:
            errors.append(f"{path}: {value!r} not one of {schema['enum']}")

        if "type" in schema:
            allowed = schema["type"]
            if isinstance(allowed, str):
                allowed = [allowed]
            if not any(self._has_type(value, t) for t in allowed):
                errors.append(f"{path}: expected type {'/'.join(allowed)}, "
                              f"got {type(value).__name__}")
                return  # structural keywords below assume the right type

        if isinstance(value, bool):
            return  # bool is an int in Python; keep it out of minimum
        if isinstance(value, (int, float)):
            if "minimum" in schema and value < schema["minimum"]:
                errors.append(f"{path}: {value} < minimum "
                              f"{schema['minimum']}")
        if isinstance(value, str):
            if "minLength" in schema and len(value) < schema["minLength"]:
                errors.append(f"{path}: string shorter than "
                              f"{schema['minLength']}")
            if "maxLength" in schema and len(value) > schema["maxLength"]:
                errors.append(f"{path}: string longer than "
                              f"{schema['maxLength']}")
        if isinstance(value, list):
            if "minItems" in schema and len(value) < schema["minItems"]:
                errors.append(f"{path}: fewer than {schema['minItems']} "
                              f"items")
            if "maxItems" in schema and len(value) > schema["maxItems"]:
                errors.append(f"{path}: more than {schema['maxItems']} items")
            if "items" in schema:
                for i, item in enumerate(value):
                    self._check(item, schema["items"], owner,
                                f"{path}[{i}]", errors)
        if isinstance(value, dict):
            for key in schema.get("required", ()):
                if key not in value:
                    errors.append(f"{path}: missing required key '{key}'")
            properties = schema.get("properties", {})
            for key, sub in properties.items():
                if key in value:
                    self._check(value[key], sub, owner,
                                f"{path}.{key}", errors)
            extra = schema.get("additionalProperties", True)
            if extra is not True:
                for key in value:
                    if key in properties:
                        continue
                    if extra is False:
                        errors.append(f"{path}: unexpected key '{key}'")
                    else:
                        self._check(value[key], extra, owner,
                                    f"{path}.{key}", errors)

    @staticmethod
    def _has_type(value, name):
        if name == "null":
            return value is None
        if name == "boolean":
            return isinstance(value, bool)
        if name == "integer":
            return isinstance(value, int) and not isinstance(value, bool)
        if name == "number":
            return (isinstance(value, (int, float))
                    and not isinstance(value, bool))
        if name == "string":
            return isinstance(value, str)
        if name == "array":
            return isinstance(value, list)
        if name == "object":
            return isinstance(value, dict)
        raise ValueError(f"unknown type name in schema: {name}")


def main(argv):
    args = list(argv[1:])
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    schema_path, _, fragment = args.pop(0).partition("#")
    line_refs = None
    if args and args[0] == "--lines":
        if len(args) < 4:
            print("--lines needs HEADER_REF RECORD_REF FILE...",
                  file=sys.stderr)
            return 2
        line_refs = (args[1], args[2])
        args = args[3:]
    if not args:
        print("no input files", file=sys.stderr)
        return 2

    schemas = SchemaSet(os.path.dirname(os.path.abspath(schema_path)))
    schema_name = os.path.basename(schema_path)
    failures = 0
    documents = 0
    for input_path in args:
        with open(input_path, encoding="utf-8") as handle:
            if line_refs is None:
                errors = schemas.validate(json.load(handle),
                                          schema_name + "#" + fragment)
                documents += 1
            else:
                errors = []
                seen = 0
                for lineno, line in enumerate(handle, start=1):
                    if not line.strip():
                        continue
                    ref = schema_name + line_refs[0 if seen == 0 else 1]
                    seen += 1
                    errors.extend(
                        f"line {lineno}: {e}"
                        for e in schemas.validate(json.loads(line), ref))
                documents += seen
        for error in errors:
            print(f"{input_path}: {error}")
        failures += len(errors)
    if failures:
        print(f"schema validation: {failures} violation(s)")
        return 1
    print(f"schema validation: {documents} document(s) valid "
          f"against {schema_name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
