// Locks in the typed event core's headline property: once a simulation
// reaches steady state, executing delivery and timer events performs ZERO
// heap allocations. The test binary replaces the global allocation
// functions with counting wrappers and runs a ping-pong network through
// tens of thousands of events after a warm-up phase (which is allowed to
// allocate: vectors grow to their high-water marks, counters intern their
// keys). Any closure, map node or refcount block sneaking back onto the
// hot path turns the delta positive and fails loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "slpdas/das/protocol.hpp"
#include "slpdas/sim/simulator.hpp"
#include "slpdas/slp/slp_das.hpp"
#include "slpdas/wsn/topology.hpp"
#include "slpdas/wsn/topology_spec.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting replacements for the global allocation functions. Only this
// test binary links them; gtest and the warm-up phase allocate freely —
// the assertion is on the DELTA across the measured window.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* pointer = std::malloc(size != 0 ? size : 1)) {
    return pointer;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const auto align = static_cast<std::size_t>(alignment);
  const std::size_t rounded = (size != 0 ? size + align - 1 : align) &
                              ~(align - 1);
  if (void* pointer = std::aligned_alloc(align, rounded)) {
    return pointer;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}
void operator delete(void* pointer) noexcept { std::free(pointer); }
void operator delete[](void* pointer) noexcept { std::free(pointer); }
void operator delete(void* pointer, std::size_t) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, std::size_t) noexcept {
  std::free(pointer);
}
void operator delete(void* pointer, const std::nothrow_t&) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, const std::nothrow_t&) noexcept {
  std::free(pointer);
}
void operator delete(void* pointer, std::align_val_t) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, std::align_val_t) noexcept {
  std::free(pointer);
}
void operator delete(void* pointer, std::size_t, std::align_val_t) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, std::size_t, std::align_val_t) noexcept {
  std::free(pointer);
}

namespace slpdas::sim {
namespace {

struct PingMessage final : Message {
  [[nodiscard]] const char* name() const noexcept override { return "PING"; }
};

/// Broadcasts one cached immutable message per timer tick, forever. The
/// handler itself allocates nothing, so every allocation observed in
/// steady state would come from the event machinery.
class PingProcess final : public Process {
 public:
  void on_start() override {
    message_ = std::make_shared<PingMessage>();
    set_timer(1, kMillisecond);
  }
  void on_timer(int) override {
    broadcast(message_);
    set_timer(1, kMillisecond);
  }
  void on_message(wsn::NodeId, const Message&) override { ++received_; }

 private:
  MessagePtr message_;
  std::uint64_t received_ = 0;
};

/// Runs a warmed-up ping-pong simulation for ten more simulated seconds
/// and asserts the window allocated nothing.
void run_measured_window(Simulator& simulator) {
  const std::uint64_t events_before = simulator.events_executed();
  const std::uint64_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);

  const SimTime start = simulator.now();
  simulator.run_until(start + 10 * kSecond);

  const std::uint64_t events_executed =
      simulator.events_executed() - events_before;
  const std::uint64_t allocations =
      g_allocations.load(std::memory_order_relaxed) - allocations_before;
  // ~3 timer fires + ~4 deliveries per millisecond for ten seconds.
  EXPECT_GT(events_executed, 50000u);
  EXPECT_GT(simulator.deliveries_executed(), 0u);
  EXPECT_GT(simulator.timers_fired(), 0u);
  EXPECT_EQ(allocations, 0u)
      << "the delivery/timer hot path allocated " << allocations
      << " times across " << events_executed << " events";
}

TEST(EventAllocTest, SteadyStateDeliveryAndTimerPathAllocatesNothing) {
  const wsn::Topology line = wsn::make_line(3);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  for (wsn::NodeId n = 0; n < 3; ++n) {
    simulator.add_process(n, std::make_unique<PingProcess>());
  }

  // Warm-up: heap vector, slot tables, traffic counters and the per-type
  // send map all reach their steady sizes.
  simulator.run_until(100 * kMillisecond);
  run_measured_window(simulator);
}

TEST(EventAllocTest, QueuePreSizingMakesWarmupNearlyImmediate) {
  // The Simulator pre-sizes its event queue (and every dense per-node
  // table) from the topology at construction, so "steady state" starts
  // almost immediately: two timer ticks — enough for processes to build
  // their cached payloads and for the first bucket transition — and the
  // remaining ten simulated seconds must not allocate once.
  const wsn::Topology line = wsn::make_line(3);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  for (wsn::NodeId n = 0; n < 3; ++n) {
    simulator.add_process(n, std::make_unique<PingProcess>());
  }
  simulator.run_until(2 * kMillisecond);
  run_measured_window(simulator);
}

TEST(EventAllocTest, ReservedQueueAbsorbsItsPendingBudgetWithoutAllocating) {
  // EventQueue::reserve(pending, staged) must cover repeated fill/drain
  // cycles of up to `pending` timer events across the whole calendar —
  // active-window inserts, bucket bins, far overflow and the refill
  // shuffles between them — without a single further allocation. Also
  // exercised on the forced heap backend.
  for (const auto backend :
       {EventQueue::Backend::kCalendar, EventQueue::Backend::kHeap}) {
    EventQueue queue(backend);
    constexpr std::size_t kPending = 1000;
    queue.reserve(kPending, 8);
    const std::uint64_t allocations_before =
        g_allocations.load(std::memory_order_relaxed);
    SimTime now = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
      for (std::size_t i = 0; i < kPending; ++i) {
        // Spread across bins, the active window and the far overflow.
        queue.push_timer(now + static_cast<SimTime>(i) * 4096, 0, 1, i);
      }
      while (!queue.empty()) {
        (void)queue.pop(now);
      }
    }
    const std::uint64_t allocations =
        g_allocations.load(std::memory_order_relaxed) - allocations_before;
    EXPECT_EQ(allocations, 0u)
        << "reserved queue allocated " << allocations << " times (backend "
        << (backend == EventQueue::Backend::kCalendar ? "calendar" : "heap")
        << ")";
  }
}

/// The phase-prefix fork's allocation contract: the FIRST seed of a batch
/// may allocate freely (vectors, pools and the node-state arena all grow
/// to their high-water marks), but once reset_run rewinds everything in
/// place, a subsequent seed's steady state — here, the data phase, after
/// a couple of warm periods let this seed's payload pools and counters
/// settle — must not allocate at all. Runs the REAL protocols (DAS and
/// the SLP extension) under the production noise model, not the ping
/// fixture, so any per-seed allocation sneaking into a protocol handler,
/// the pooled-message path or the queue/arena reset fails here.
/// Phantom routing is deliberately not covered: its std::set/map-based
/// bookkeeping allocates per insert by design (it is not on the paper's
/// hot sweep path).
template <typename ProcessFactory>
void run_second_seed_window(ProcessFactory make_process) {
  const wsn::Topology grid = wsn::TopologySpec::grid(5).build();
  const das::DasConfig das_config{};
  const SimTime period = das_config.period();
  const SimTime data_start = das_config.minimum_setup_periods * period;

  Simulator simulator(grid.graph, std::make_unique<CasinoLabNoise>(), 1);
  for (wsn::NodeId n = 0; n < grid.graph.node_count(); ++n) {
    simulator.add_process(n, make_process(grid));
  }
  // Seed 1 end-to-end: establishes every high-water mark.
  simulator.run_until(data_start + 10 * period);

  // Seed 2: setup plus two warm data-phase periods may still allocate
  // (this seed's first pooled sends, counter re-interning); the measured
  // window after that must be allocation-free.
  simulator.reset_run(2);
  simulator.run_until(data_start + 2 * period);

  const std::uint64_t events_before = simulator.events_executed();
  const std::uint64_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);
  simulator.run_until(data_start + 8 * period);
  const std::uint64_t events_executed =
      simulator.events_executed() - events_before;
  const std::uint64_t allocations =
      g_allocations.load(std::memory_order_relaxed) - allocations_before;
  // ~145 events per data-phase period on the side-5 grid (one NORMAL per
  // node plus deliveries and slot timers); six periods measured.
  EXPECT_GT(events_executed, 600u);
  EXPECT_EQ(allocations, 0u)
      << "the second seed of a forked batch allocated " << allocations
      << " times across " << events_executed << " data-phase events";
}

TEST(EventAllocTest, SecondSeedOfForkedDasBatchAllocatesNothing) {
  run_second_seed_window([](const wsn::Topology& topology) {
    return std::make_unique<das::ProtectionlessDas>(
        das::DasConfig{}, topology.sink, topology.source);
  });
}

TEST(EventAllocTest, SecondSeedOfForkedSlpBatchAllocatesNothing) {
  run_second_seed_window([](const wsn::Topology& topology) {
    return std::make_unique<slp::SlpDas>(slp::SlpConfig{}, topology.sink,
                                         topology.source);
  });
}

}  // namespace
}  // namespace slpdas::sim
