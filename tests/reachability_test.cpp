// Tests for the attacker reachability analysis.
#include "slpdas/verify/reachability.hpp"

#include <gtest/gtest.h>

#include "slpdas/das/centralized.hpp"
#include "slpdas/wsn/topology.hpp"

namespace slpdas::verify {
namespace {

using mac::Schedule;

/// Line 0-1-2-3-4, sink 4 (slot 10), descending toward 0: from the sink the
/// min-slot attacker sweeps the whole line, one period per hop.
struct LineFixture {
  wsn::Topology topology = wsn::make_line(5);
  Schedule schedule{5};
  VerifyAttacker attacker;

  LineFixture() {
    schedule.set_slot(4, 10);
    schedule.set_slot(3, 8);
    schedule.set_slot(2, 6);
    schedule.set_slot(1, 4);
    schedule.set_slot(0, 2);
    attacker.start = 4;
  }
};

TEST(ReachabilityTest, LineSweepPeriods) {
  const LineFixture f;
  const auto result =
      attacker_reachability(f.topology.graph, f.schedule, f.attacker, 100);
  EXPECT_EQ(result.min_periods,
            (std::vector<int>{4, 3, 2, 1, 0}));
  EXPECT_EQ(result.reachable_count(), 5);
}

TEST(ReachabilityTest, PeriodCapTruncates) {
  const LineFixture f;
  const auto result =
      attacker_reachability(f.topology.graph, f.schedule, f.attacker, 2);
  EXPECT_EQ(result.min_periods[0], ReachabilityResult::kUnreachablePeriod);
  EXPECT_EQ(result.min_periods[2], 2);
  EXPECT_EQ(result.reached_within(2), (std::vector<wsn::NodeId>{2, 3, 4}));
}

TEST(ReachabilityTest, MatchesMinCapturePeriodPerNode) {
  const wsn::Topology grid = wsn::make_grid(5);
  const auto das = das::build_centralized_das(grid.graph, grid.sink);
  VerifyAttacker attacker;
  attacker.start = grid.sink;
  const int cap = 60;
  const auto reach =
      attacker_reachability(grid.graph, das.schedule, attacker, cap);
  for (wsn::NodeId node = 0; node < grid.graph.node_count(); ++node) {
    const auto capture =
        min_capture_period(grid.graph, das.schedule, attacker, node, cap);
    if (capture) {
      EXPECT_EQ(reach.min_periods[static_cast<std::size_t>(node)], *capture)
          << "node " << node;
    } else {
      EXPECT_EQ(reach.min_periods[static_cast<std::size_t>(node)],
                ReachabilityResult::kUnreachablePeriod)
          << "node " << node;
    }
  }
}

TEST(ReachabilityTest, DecoyShrinksExposedRegion) {
  // Y-shape with a decoy branch (as in verify_schedule_test): the min-slot
  // attacker reaches only the decoy side.
  wsn::Graph graph(5);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(0, 3);
  graph.add_edge(3, 4);
  Schedule schedule(5);
  schedule.set_slot(0, 10);
  schedule.set_slot(1, 6);
  schedule.set_slot(2, 5);
  schedule.set_slot(3, 3);
  schedule.set_slot(4, 2);
  VerifyAttacker attacker;
  attacker.start = 0;
  const auto reach = attacker_reachability(graph, schedule, attacker, 50);
  EXPECT_NE(reach.min_periods[3], ReachabilityResult::kUnreachablePeriod);
  EXPECT_NE(reach.min_periods[4], ReachabilityResult::kUnreachablePeriod);
  EXPECT_EQ(reach.min_periods[1], ReachabilityResult::kUnreachablePeriod);
  EXPECT_EQ(reach.min_periods[2], ReachabilityResult::kUnreachablePeriod);
  EXPECT_EQ(reach.reachable_count(), 3);  // start + decoy branch
}

TEST(ReachabilityTest, WorstCaseAttackerReachesEverything) {
  const wsn::Topology grid = wsn::make_grid(5);
  const auto das = das::build_centralized_das(grid.graph, grid.sink);
  VerifyAttacker attacker;
  attacker.start = grid.sink;
  attacker.policy = DPolicy::kAnyHeard;
  attacker.messages_per_move = 4;
  attacker.moves_per_period = 4;
  const auto reach =
      attacker_reachability(grid.graph, das.schedule, attacker, 200);
  EXPECT_EQ(reach.reachable_count(), grid.graph.node_count());
}

TEST(ReachabilityTest, InputValidation) {
  const LineFixture f;
  VerifyAttacker bad = f.attacker;
  bad.start = 99;
  EXPECT_THROW(
      (void)attacker_reachability(f.topology.graph, f.schedule, bad, 10),
      std::out_of_range);
  EXPECT_THROW((void)attacker_reachability(f.topology.graph, Schedule{2},
                                           f.attacker, 10),
               std::invalid_argument);
  EXPECT_THROW((void)attacker_reachability(f.topology.graph, f.schedule,
                                           f.attacker, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace slpdas::verify
