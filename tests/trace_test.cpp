// Tests for the transmission trace recorder, including the protocol-level
// timing property it was built to check: data transmissions happen inside
// the sender's own TDMA slot.
#include "slpdas/sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "slpdas/das/protocol.hpp"
#include "test_util.hpp"

namespace slpdas::sim {
namespace {

using test::fast_parameters;
using test::make_protectionless_net;

TEST(TraceRecorderTest, RecordsAllTransmissionsByDefault) {
  auto net = make_protectionless_net(wsn::make_line(3), fast_parameters(12), 1);
  TraceRecorder recorder(net.params.frame());
  net.simulator->add_observer(&recorder);
  net.simulator->run_until(net.setup_end());
  EXPECT_EQ(recorder.size(), net.simulator->total_sent());
}

TEST(TraceRecorderTest, TypeFilterSelects) {
  auto net = make_protectionless_net(wsn::make_line(3), fast_parameters(12), 2);
  TraceRecorder recorder(net.params.frame());
  recorder.set_type_filter("HELLO");
  net.simulator->add_observer(&recorder);
  net.simulator->run_until(net.setup_end());
  EXPECT_EQ(recorder.size(), net.simulator->sends_by_type().at("HELLO"));
  for (const TraceEntry& entry : recorder.entries()) {
    EXPECT_EQ(entry.type, "HELLO");
  }
}

TEST(TraceRecorderTest, StartTimeCutsPrefix) {
  auto net = make_protectionless_net(wsn::make_line(3), fast_parameters(12), 3);
  TraceRecorder recorder(net.params.frame());
  recorder.set_start_time(net.setup_end());
  net.simulator->add_observer(&recorder);
  net.simulator->run_until(net.setup_end() + 2 * net.period());
  for (const TraceEntry& entry : recorder.entries()) {
    EXPECT_GE(entry.at, net.setup_end());
  }
  EXPECT_GT(recorder.size(), 0u);
}

TEST(TraceRecorderTest, DataTransmissionsLandInOwnSlot) {
  // The property the recorder exists for: every NORMAL message fires in
  // the slot its sender holds in the extracted schedule.
  auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(), 4);
  TraceRecorder recorder(net.params.frame());
  recorder.set_type_filter("NORMAL");
  recorder.set_start_time(net.setup_end());
  net.simulator->add_observer(&recorder);
  net.simulator->run_until(net.setup_end() + 3 * net.period());
  const auto schedule = das::extract_schedule(*net.simulator);
  ASSERT_GT(recorder.size(), 0u);
  for (const TraceEntry& entry : recorder.entries()) {
    EXPECT_EQ(entry.slot,
              net.params.frame().clamp_slot(schedule.slot(entry.sender)))
        << "sender " << entry.sender;
  }
}

TEST(TraceRecorderTest, PeriodSliceAndPerNodeCounts) {
  auto net = make_protectionless_net(wsn::make_grid(3), fast_parameters(12), 5);
  TraceRecorder recorder(net.params.frame());
  recorder.set_type_filter("NORMAL");
  net.simulator->add_observer(&recorder);
  const int periods = 12 + 3;
  net.simulator->run_until(periods * net.period());
  const auto slice = recorder.period_slice(12);
  EXPECT_EQ(slice.size(), 8u);  // every non-sink node once
  const auto counts = recorder.sends_per_node(9);
  for (wsn::NodeId n = 0; n < 9; ++n) {
    if (n == net.topology.sink) {
      EXPECT_EQ(counts[static_cast<std::size_t>(n)], 0u);
    } else {
      EXPECT_EQ(counts[static_cast<std::size_t>(n)], 3u) << "node " << n;
    }
  }
}

TEST(TraceRecorderTest, CsvDump) {
  auto net = make_protectionless_net(wsn::make_line(3), fast_parameters(12), 6);
  TraceRecorder recorder(net.params.frame());
  net.simulator->add_observer(&recorder);
  net.simulator->run_until(2 * net.period());
  std::ostringstream out;
  recorder.write_csv(out);
  EXPECT_NE(out.str().find("at_us,sender,type,period,slot\n"),
            std::string::npos);
  EXPECT_NE(out.str().find("HELLO"), std::string::npos);
}

TEST(TraceRecorderTest, ClearResets) {
  auto net = make_protectionless_net(wsn::make_line(3), fast_parameters(12), 7);
  TraceRecorder recorder(net.params.frame());
  net.simulator->add_observer(&recorder);
  net.simulator->run_until(net.period());
  EXPECT_GT(recorder.size(), 0u);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

}  // namespace
}  // namespace slpdas::sim
