// Tests for the simulator-embedded eavesdropper: activation, audibility,
// period bookkeeping, capture detection and the (1,0,1) walk dynamics.
#include "slpdas/attacker/runtime.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace slpdas::attacker {
namespace {

using test::fast_parameters;
using test::make_protectionless_net;

AttackerParams default_params(wsn::NodeId start) {
  AttackerParams params;
  params.start = start;
  params.validate_and_default();
  return params;
}

TEST(AttackerRuntimeTest, RejectsInvalidConfiguration) {
  auto net = make_protectionless_net(wsn::make_line(3), fast_parameters(12), 1);
  EXPECT_THROW(AttackerRuntime(*net.simulator, net.params.frame(),
                               default_params(99), 0),
               std::invalid_argument);
  EXPECT_THROW(AttackerRuntime(*net.simulator, net.params.frame(),
                               default_params(2), 99),
               std::invalid_argument);
}

TEST(AttackerRuntimeTest, DoesNotMoveBeforeActivation) {
  auto net = make_protectionless_net(wsn::make_line(4), fast_parameters(12), 2);
  AttackerRuntime attacker(*net.simulator, net.params.frame(),
                           default_params(net.topology.sink),
                           net.topology.source);
  net.simulator->run_until(net.setup_end() + 2 * net.period());
  // Never activated: stays parked at the sink despite all the traffic.
  EXPECT_EQ(attacker.location(), net.topology.sink);
  EXPECT_FALSE(attacker.captured());
}

TEST(AttackerRuntimeTest, IgnoresControlTraffic) {
  auto net = make_protectionless_net(wsn::make_line(4), fast_parameters(12), 3);
  AttackerRuntime attacker(*net.simulator, net.params.frame(),
                           default_params(net.topology.sink),
                           net.topology.source);
  attacker.activate(0);
  // Run through setup only: all traffic so far is HELLO/DISSEM, which an
  // SLP eavesdropper does not trace.
  net.simulator->run_until(net.setup_end());
  EXPECT_EQ(attacker.location(), net.topology.sink);
  EXPECT_EQ(attacker.moves_made(), 0);
}

TEST(AttackerRuntimeTest, CapturesOnLineInDistancePeriods) {
  // On a line there is only one direction to walk: the attacker must reach
  // the source in exactly Delta_ss periods of data traffic.
  auto net = make_protectionless_net(wsn::make_line(5), fast_parameters(14), 4);
  AttackerRuntime attacker(*net.simulator, net.params.frame(),
                           default_params(net.topology.sink),
                           net.topology.source);
  const sim::SimTime activation = net.setup_end();
  net.simulator->call_at(activation, [&] { attacker.activate(activation); });
  net.simulator->run_until(activation + 10 * net.period());
  ASSERT_TRUE(attacker.captured());
  const auto periods_taken =
      (*attacker.capture_time() - activation + net.period() - 1) /
      net.period();
  EXPECT_LE(periods_taken, 5);
  EXPECT_EQ(attacker.location(), net.topology.source);
}

TEST(AttackerRuntimeTest, TrailIsAWalkOnTheGraph) {
  auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(), 5);
  AttackerRuntime attacker(*net.simulator, net.params.frame(),
                           default_params(net.topology.sink),
                           net.topology.source);
  const sim::SimTime activation = net.setup_end();
  net.simulator->call_at(activation, [&] { attacker.activate(activation); });
  net.simulator->run_until(activation + 20 * net.period());
  const auto& trail = attacker.trail();
  ASSERT_GE(trail.size(), 2u);
  EXPECT_EQ(trail.front(), net.topology.sink);
  for (std::size_t i = 0; i + 1 < trail.size(); ++i) {
    EXPECT_TRUE(net.topology.graph.has_edge(trail[i], trail[i + 1]))
        << "trail step " << i;
  }
}

TEST(AttackerRuntimeTest, OneMovePerPeriodForClassicAttacker) {
  auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(), 6);
  AttackerRuntime attacker(*net.simulator, net.params.frame(),
                           default_params(net.topology.sink),
                           net.topology.source);
  attacker.set_stop_on_capture(false);
  const sim::SimTime activation = net.setup_end();
  net.simulator->call_at(activation, [&] { attacker.activate(activation); });
  const int periods = 7;
  net.simulator->run_until(activation + periods * net.period());
  EXPECT_LE(attacker.moves_made(), periods);
}

TEST(AttackerRuntimeTest, StopOnCaptureHaltsSimulation) {
  auto net = make_protectionless_net(wsn::make_line(4), fast_parameters(12), 7);
  AttackerRuntime attacker(*net.simulator, net.params.frame(),
                           default_params(net.topology.sink),
                           net.topology.source);
  const sim::SimTime activation = net.setup_end();
  net.simulator->call_at(activation, [&] { attacker.activate(activation); });
  net.simulator->run_until(activation + 20 * net.period());
  ASSERT_TRUE(attacker.captured());
  EXPECT_TRUE(net.simulator->stopped());
  EXPECT_EQ(net.simulator->now(), *attacker.capture_time());
}

TEST(AttackerRuntimeTest, KeepsRunningWhenStopDisabled) {
  auto net = make_protectionless_net(wsn::make_line(4), fast_parameters(12), 8);
  AttackerRuntime attacker(*net.simulator, net.params.frame(),
                           default_params(net.topology.sink),
                           net.topology.source);
  attacker.set_stop_on_capture(false);
  const sim::SimTime activation = net.setup_end();
  const sim::SimTime horizon = activation + 20 * net.period();
  net.simulator->call_at(activation, [&] { attacker.activate(activation); });
  net.simulator->run_until(horizon);
  ASSERT_TRUE(attacker.captured());
  EXPECT_FALSE(net.simulator->stopped());
  EXPECT_EQ(net.simulator->now(), horizon);
}

TEST(AttackerSlotInferenceTest, MapsArrivalTimesToDataSlots) {
  const mac::FrameConfig frame;  // Table I: 100 slots, Pslot 0.05s, Pdiss 0.5s
  const sim::SimTime dissem = frame.dissem_period;
  // The dissemination window carries no data slots.
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(frame, 0), mac::kNoSlot);
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(frame, dissem - 1),
            mac::kNoSlot);
  // First tick of slot 1; last tick of the last slot of the period.
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(frame, dissem), 1);
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(frame, frame.period() - 1),
            frame.slot_count);
  // The mapping is periodic: slot 2 of the third period.
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(
                frame, 2 * frame.period() + dissem + frame.slot_period),
            2);
  // Pre-epoch times never map to a slot.
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(frame, -5), mac::kNoSlot);
}

TEST(AttackerSlotInferenceTest, DegenerateFramesInferNoSlotInsteadOfUB) {
  // Regression: a non-positive slot period used to reach the
  // (offset - Pdiss) / Pslot division unguarded, and any inference past
  // the frame's last data slot was handed to the decision function as a
  // SlotId the schedule cannot contain.
  mac::FrameConfig zero = {};
  zero.slot_period = 0;
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(zero, zero.dissem_period + 1),
            mac::kNoSlot);
  mac::FrameConfig negative = {};
  negative.slot_period = -5;
  EXPECT_EQ(
      AttackerRuntime::infer_sender_slot(negative, negative.dissem_period + 1),
      mac::kNoSlot);
  // No data slots at all: every arrival is "slot unknown".
  mac::FrameConfig slotless = {};
  slotless.slot_count = 0;
  for (sim::SimTime at : {sim::SimTime{0}, slotless.dissem_period - 1,
                          slotless.dissem_period, 3 * slotless.period()}) {
    EXPECT_EQ(AttackerRuntime::infer_sender_slot(slotless, at), mac::kNoSlot)
        << at;
  }
  // A non-positive period (negative slot count) has no slot timeline.
  mac::FrameConfig inverted = {};
  inverted.slot_count = -100;
  inverted.slot_period = sim::kSecond;
  EXPECT_EQ(AttackerRuntime::infer_sender_slot(inverted, sim::kSecond),
            mac::kNoSlot);
}

TEST(AttackerRuntimeTest, HistoryAttackerRecordsBoundedHistory) {
  auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(), 9);
  AttackerParams params;
  params.start = net.topology.sink;
  params.history_size = 2;
  params.moves_per_period = 2;
  params.decision = make_history_avoiding();
  AttackerRuntime attacker(*net.simulator, net.params.frame(), params,
                           net.topology.source);
  attacker.set_stop_on_capture(false);
  const sim::SimTime activation = net.setup_end();
  net.simulator->call_at(activation, [&] { attacker.activate(activation); });
  net.simulator->run_until(activation + 10 * net.period());
  EXPECT_GE(attacker.moves_made(), 1);
}

}  // namespace
}  // namespace slpdas::attacker
