// Tests for the phantom-routing baseline (routing-layer SLP).
#include "slpdas/phantom/phantom_routing.hpp"

#include <gtest/gtest.h>

#include "slpdas/attacker/runtime.hpp"
#include "slpdas/core/experiment.hpp"
#include "slpdas/wsn/paths.hpp"
#include "test_util.hpp"

namespace slpdas::phantom {
namespace {

struct PhantomNet {
  wsn::Topology topology;
  std::unique_ptr<sim::Simulator> simulator;
  PhantomConfig config;

  [[nodiscard]] PhantomRouting& node(wsn::NodeId id) {
    return dynamic_cast<PhantomRouting&>(simulator->process(id));
  }
};

PhantomNet make_net(wsn::Topology topology, std::uint64_t seed,
                    int setup_periods = 10, int walk = 4) {
  PhantomNet net{std::move(topology), nullptr, {}};
  net.config.period = sim::from_seconds(0.3);
  net.config.hello_periods = 3;
  net.config.setup_periods = setup_periods;
  net.config.walk_length = walk;
  net.config.forward_delay_max = 5 * sim::kMillisecond;
  net.simulator = std::make_unique<sim::Simulator>(
      net.topology.graph, sim::make_ideal_radio(), seed);
  net.simulator->set_propagation_delay(sim::kMillisecond / 10);
  for (wsn::NodeId n = 0; n < net.topology.graph.node_count(); ++n) {
    net.simulator->add_process(
        n, std::make_unique<PhantomRouting>(net.config, net.topology.sink,
                                            net.topology.source));
  }
  return net;
}

TEST(PhantomRoutingTest, GradientConvergesToBfsDistances) {
  auto net = make_net(wsn::make_grid(5), 1);
  net.simulator->run_until(net.config.setup_periods * net.config.period);
  const auto distances =
      wsn::bfs_distances(net.topology.graph, net.topology.sink);
  for (wsn::NodeId n = 0; n < net.topology.graph.node_count(); ++n) {
    EXPECT_EQ(net.node(n).hops_from_sink(),
              distances[static_cast<std::size_t>(n)])
        << "node " << n;
  }
}

TEST(PhantomRoutingTest, FloodDeliversEveryDatum) {
  auto net = make_net(wsn::make_grid(5), 2);
  const int data_periods = 8;
  net.simulator->run_until(
      (net.config.setup_periods + data_periods) * net.config.period);
  const auto& source = net.node(net.topology.source);
  const auto& sink = net.node(net.topology.sink);
  ASSERT_GE(source.generated_count(), static_cast<std::uint64_t>(data_periods - 1));
  EXPECT_GE(sink.delivered_count(), source.generated_count() - 1);
  EXPECT_GT(sink.mean_delivery_latency_s(), 0.0);
}

TEST(PhantomRoutingTest, ZeroWalkDegeneratesToPlainFlooding) {
  auto net = make_net(wsn::make_grid(5), 3, 10, /*walk=*/0);
  net.simulator->run_until((net.config.setup_periods + 5) * net.config.period);
  EXPECT_GE(net.node(net.topology.sink).delivered_count(), 4u);
}

TEST(PhantomRoutingTest, ConfigValidation) {
  PhantomConfig config;
  config.hello_periods = 0;
  EXPECT_THROW(PhantomRouting(config, 0, 1), std::invalid_argument);
  config = {};
  config.setup_periods = config.hello_periods;
  EXPECT_THROW(PhantomRouting(config, 0, 1), std::invalid_argument);
  config = {};
  config.walk_length = -1;
  EXPECT_THROW(PhantomRouting(config, 0, 1), std::invalid_argument);
  config = {};
  config.forward_delay_max = 0;
  EXPECT_THROW(PhantomRouting(config, 0, 1), std::invalid_argument);
}

TEST(PhantomRoutingTest, MessageOverheadIsMuchHigherThanDas) {
  // The paper's framing: routing-layer SLP costs many more transmissions.
  // Phantom floods EVERY datum (N rebroadcasts each); DAS sends one
  // message per node per period total.
  core::ExperimentConfig das_config;
  das_config.topology = wsn::TopologySpec::grid(7);
  das_config.parameters = test::fast_parameters(24);
  das_config.protocol = core::ProtocolKind::kProtectionlessDas;
  das_config.radio = core::RadioKind::kIdeal;
  das_config.runs = 2;
  das_config.check_schedules = false;
  const auto das_result = core::run_experiment(das_config);

  core::ExperimentConfig phantom_config = das_config;
  phantom_config.protocol = core::ProtocolKind::kPhantomRouting;
  phantom_config.phantom_walk_length = 4;
  const auto phantom_result = core::run_experiment(phantom_config);

  EXPECT_GT(phantom_result.delivery_ratio.mean(), 0.8);
  EXPECT_GT(das_result.delivery_ratio.mean(), 0.8);
  // Phantom pays per-datum walk + flood traffic; with flooding DAS both
  // are O(N) per period, so only assert phantom produced real traffic.
  EXPECT_GT(phantom_result.normal_messages_per_node.mean(), 0.0);
}

TEST(PhantomRoutingTest, AttackerRunsAgainstPhantomTraffic) {
  // The protocol-agnostic eavesdropper must hunt phantom traffic without
  // modification, and the walk should usually keep the source safe for at
  // least the line's hop count of periods.
  auto net = make_net(wsn::make_grid(7), 5, 10, 5);
  mac::FrameConfig frame;  // only the period length matters for phantom
  frame.slot_count = 1;
  frame.slot_period = net.config.period / 2;
  frame.dissem_period = net.config.period - frame.slot_period;
  attacker::AttackerParams params;
  params.start = net.topology.sink;
  attacker::AttackerRuntime eavesdropper(*net.simulator, frame, params,
                                         net.topology.source);
  const sim::SimTime activation =
      net.config.setup_periods * net.config.period;
  net.simulator->call_at(activation,
                         [&] { eavesdropper.activate(activation); });
  net.simulator->run_until(activation + 12 * net.config.period);
  // The attacker moved at least once (phantom traffic is audible)...
  EXPECT_GE(eavesdropper.moves_made(), 1);
  // ...and its trail is a valid walk.
  const auto& trail = eavesdropper.trail();
  for (std::size_t i = 0; i + 1 < trail.size(); ++i) {
    EXPECT_TRUE(net.topology.graph.has_edge(trail[i], trail[i + 1]));
  }
}

TEST(PhantomRoutingTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    auto net = make_net(wsn::make_grid(5), seed);
    net.simulator->run_until((net.config.setup_periods + 4) *
                             net.config.period);
    return net.simulator->total_sent();
  };
  EXPECT_EQ(run(11), run(11));
}

}  // namespace
}  // namespace slpdas::phantom
