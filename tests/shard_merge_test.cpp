// Shard/merge determinism: a sweep run as 1, 2 or 3 shard processes and
// merged back must serialise bit-identically to the unsharded document
// (with deterministic timing, which zeroes the only nondeterministic
// fields). Also covers the shard partition itself and merge validation.
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "slpdas/core/sweep.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

/// Five cheap cells — deliberately not a multiple of 2 or 3, so every
/// shard count exercises uneven partitions.
std::vector<SweepCell> five_cells() {
  ExperimentConfig base;
  base.topology = wsn::TopologySpec::grid(5);
  base.parameters = test::fast_parameters(24);
  base.radio = RadioKind::kCasinoLab;
  base.runs = 2;
  base.check_schedules = false;
  SweepGrid grid(base);
  std::vector<SweepGrid::AxisValue> values;
  for (int i = 0; i < 5; ++i) {
    values.push_back({std::to_string(i), nullptr});
  }
  grid.axis("cell", std::move(values));
  return grid.expand();
}

SweepOptions deterministic_options(int shard_index = 0, int shard_count = 1) {
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 77;
  options.deterministic_timing = true;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  return options;
}

std::string to_text(const SweepJson& document) {
  std::ostringstream out;
  write_sweep_json(out, document);
  return out.str();
}

/// Runs shard i/n, serialises, reparses — the same path two cooperating
/// processes plus `slpdas_bench merge` would take.
SweepJson run_shard_through_json(const std::vector<SweepCell>& cells, int i,
                                 int n) {
  const SweepResult result = run_sweep(cells, deterministic_options(i, n));
  std::stringstream stream;
  write_sweep_json(stream, result, "shard_merge_test");
  return read_sweep_json(stream);
}

TEST(SweepShardTest, PartitionsCellsRoundRobinByIndex) {
  const auto cells = five_cells();
  const SweepResult shard = run_sweep(cells, deterministic_options(1, 2));
  EXPECT_EQ(shard.shard_index, 1);
  EXPECT_EQ(shard.shard_count, 2);
  EXPECT_EQ(shard.cells_total, 5u);
  ASSERT_EQ(shard.cells.size(), 2u);  // indices 1 and 3
  EXPECT_EQ(shard.cells[0].index, 1u);
  EXPECT_EQ(shard.cells[0].label, cells[1].label);
  EXPECT_EQ(shard.cells[1].index, 3u);
  EXPECT_EQ(shard.cells[1].label, cells[3].label);
}

TEST(SweepShardTest, ShardCellsMatchUnshardedCellsBitForBit) {
  const auto cells = five_cells();
  const SweepResult full = run_sweep(cells, deterministic_options());
  const SweepResult shard = run_sweep(cells, deterministic_options(0, 3));
  ASSERT_EQ(shard.cells.size(), 2u);  // indices 0 and 3
  for (const SweepCellResult& cell : shard.cells) {
    const SweepCellResult& reference = full.cells[cell.index];
    EXPECT_EQ(cell.label, reference.label);
    EXPECT_EQ(cell.cell_seed, reference.cell_seed);
    EXPECT_EQ(cell.result.capture.successes(),
              reference.result.capture.successes());
    EXPECT_EQ(cell.result.delivery_ratio.mean(),
              reference.result.delivery_ratio.mean());
  }
}

TEST(SweepShardTest, RejectsInvalidShardSpecs) {
  const auto cells = five_cells();
  EXPECT_THROW((void)run_sweep(cells, deterministic_options(0, 0)),
               std::invalid_argument);
  EXPECT_THROW((void)run_sweep(cells, deterministic_options(-1, 2)),
               std::invalid_argument);
  EXPECT_THROW((void)run_sweep(cells, deterministic_options(2, 2)),
               std::invalid_argument);
}

TEST(SweepShardTest, EmptyShardSerialisesAndMergesFine) {
  // More shards than cells: shard 5-of-6 gets nothing, and merging all
  // six still reproduces the unsharded document.
  const auto cells = five_cells();
  const std::string unsharded =
      to_text(to_sweep_json(run_sweep(cells, deterministic_options()),
                            "shard_merge_test"));
  std::vector<SweepJson> shards;
  for (int i = 0; i < 6; ++i) {
    shards.push_back(run_shard_through_json(cells, i, 6));
  }
  EXPECT_TRUE(shards[5].cells.empty());
  EXPECT_EQ(to_text(merge_sweep_shards(std::move(shards))), unsharded);
}

TEST(SweepMergeTest, MergingOneTwoOrThreeShardsIsBitIdentical) {
  const auto cells = five_cells();
  const std::string unsharded =
      to_text(to_sweep_json(run_sweep(cells, deterministic_options()),
                            "shard_merge_test"));
  for (int n = 1; n <= 3; ++n) {
    std::vector<SweepJson> shards;
    // Deliberately merge in reverse order: merge sorts by cell index.
    for (int i = n; i-- > 0;) {
      shards.push_back(run_shard_through_json(cells, i, n));
    }
    const SweepJson merged = merge_sweep_shards(std::move(shards));
    EXPECT_EQ(to_text(merged), unsharded) << n << " shards";
  }
}

TEST(SweepMergeTest, MergedDocumentReportsAsUnsharded) {
  const auto cells = five_cells();
  std::vector<SweepJson> shards;
  shards.push_back(run_shard_through_json(cells, 0, 2));
  shards.push_back(run_shard_through_json(cells, 1, 2));
  const SweepJson merged = merge_sweep_shards(std::move(shards));
  EXPECT_EQ(merged.shard_index, 0);
  EXPECT_EQ(merged.shard_count, 1);
  EXPECT_EQ(merged.cells_total, 5u);
  ASSERT_EQ(merged.cells.size(), 5u);
  for (std::size_t i = 0; i < merged.cells.size(); ++i) {
    EXPECT_EQ(merged.cells[i].index, i);
  }
}

TEST(SweepMergeTest, RejectsInconsistentShardSets) {
  const auto cells = five_cells();
  const SweepJson a = run_shard_through_json(cells, 0, 2);
  const SweepJson b = run_shard_through_json(cells, 1, 2);

  // No documents at all.
  EXPECT_THROW((void)merge_sweep_shards({}), std::runtime_error);
  // Wrong document count for the declared shard count.
  EXPECT_THROW((void)merge_sweep_shards({a}), std::runtime_error);
  // The same shard twice.
  EXPECT_THROW((void)merge_sweep_shards({a, a}), std::runtime_error);
  // Mismatched names.
  {
    SweepJson renamed = b;
    renamed.name = "other_bench";
    EXPECT_THROW((void)merge_sweep_shards({a, renamed}), std::runtime_error);
  }
  // Mismatched sweep seeds: merging these would silently break the
  // common-random-numbers pairing between cells on different shards.
  {
    SweepJson reseeded = b;
    reseeded.base_seed = 12345;
    EXPECT_THROW((void)merge_sweep_shards({a, reseeded}),
                 std::runtime_error);
  }
  // Mismatched grids (e.g. shards run with different --runs or axis
  // values): the full-grid fingerprints disagree.
  {
    SweepJson regridded = b;
    regridded.grid_hash ^= 1;
    EXPECT_THROW((void)merge_sweep_shards({a, regridded}),
                 std::runtime_error);
  }
  // Mismatched grid sizes.
  {
    SweepJson resized = b;
    resized.cells_total = 7;
    EXPECT_THROW((void)merge_sweep_shards({a, resized}), std::runtime_error);
  }
  // A missing cell (gap in the index cover).
  {
    SweepJson truncated = b;
    truncated.cells.pop_back();
    EXPECT_THROW((void)merge_sweep_shards({a, truncated}),
                 std::runtime_error);
  }
  // The valid pair still merges (sanity that the fixtures are good).
  EXPECT_NO_THROW((void)merge_sweep_shards({a, b}));
}

}  // namespace
}  // namespace slpdas::core
