// Tests for topology generators, especially the paper's evaluation grids
// (Section VI-A: 11x11 / 15x15 / 21x21, source top-left, sink centre,
// horizontal/vertical links only).
#include "slpdas/wsn/topology.hpp"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "slpdas/wsn/paths.hpp"

namespace slpdas::wsn {
namespace {

TEST(GridTopologyTest, PaperGridShape11) {
  const Topology topology = make_grid(11);
  EXPECT_EQ(topology.graph.node_count(), 121);
  // 4-connected grid: 2 * side * (side - 1) edges.
  EXPECT_EQ(topology.graph.edge_count(), 220u);
  EXPECT_EQ(topology.source, grid_node(11, 0, 0));
  EXPECT_EQ(topology.sink, grid_node(11, 5, 5));
}

TEST(GridTopologyTest, CornerAndCentreDegrees) {
  const Topology topology = make_grid(5);
  EXPECT_EQ(topology.graph.degree(grid_node(5, 0, 0)), 2u);
  EXPECT_EQ(topology.graph.degree(grid_node(5, 2, 0)), 3u);
  EXPECT_EQ(topology.graph.degree(grid_node(5, 2, 2)), 4u);
}

TEST(GridTopologyTest, OnlyHorizontalVerticalLinks) {
  const Topology topology = make_grid(5);
  EXPECT_FALSE(topology.graph.has_edge(grid_node(5, 0, 0), grid_node(5, 1, 1)));
  EXPECT_TRUE(topology.graph.has_edge(grid_node(5, 0, 0), grid_node(5, 1, 0)));
  EXPECT_TRUE(topology.graph.has_edge(grid_node(5, 0, 0), grid_node(5, 0, 1)));
}

TEST(GridTopologyTest, SpacingSetsPositions) {
  const Topology topology = make_grid(3, 4.5);
  const auto& p = topology.positions[static_cast<std::size_t>(grid_node(3, 2, 1))];
  EXPECT_DOUBLE_EQ(p.x, 9.0);
  EXPECT_DOUBLE_EQ(p.y, 4.5);
}

TEST(GridTopologyTest, EvenOrTinySideRejected) {
  EXPECT_THROW(make_grid(10), std::invalid_argument);
  EXPECT_THROW(make_grid(1), std::invalid_argument);
  EXPECT_THROW(make_grid(-3), std::invalid_argument);
}

TEST(GridTopologyTest, SourceSinkDistanceMatchesPaper) {
  // Source top-left, sink centre: Delta_ss = 2 * (side/2).
  for (int side : {11, 15, 21}) {
    const Topology topology = make_grid(side);
    EXPECT_EQ(hop_distance(topology.graph, topology.source, topology.sink),
              2 * (side / 2))
        << "side=" << side;
  }
}

TEST(GridTopologyTest, RectangularGridWithExplicitEndpoints) {
  const Topology topology = make_grid(4, 3, 1.0, NodeId{3}, NodeId{8});
  EXPECT_EQ(topology.graph.node_count(), 12);
  EXPECT_EQ(topology.source, 3);
  EXPECT_EQ(topology.sink, 8);
}

TEST(GridTopologyTest, RejectsSourceEqualSink) {
  // A convergecast whose asset sits on the base station is degenerate:
  // the attacker starts captured and no delivery crosses a link.
  EXPECT_THROW(make_grid(3, 3, 1.0, NodeId{4}, NodeId{4}),
               std::invalid_argument);
  // Also caught when only one endpoint is explicit and it collides with
  // the other's default (centre sink of a 3x3 grid is node 4).
  EXPECT_THROW(make_grid(3, 3, 1.0, NodeId{4}, std::nullopt),
               std::invalid_argument);
  EXPECT_THROW(make_grid(3, 3, 1.0, std::nullopt, NodeId{0}),
               std::invalid_argument);
}

TEST(GridTopologyTest, RejectsNodeCountOverflowingNodeId) {
  // 46341^2 = 2147488281 just exceeds the 2^31-1 NodeId range; the old
  // 32-bit multiply wrapped (undefined behaviour) before the Graph
  // constructor could see anything wrong. The check must fire before any
  // allocation is attempted.
  EXPECT_THROW(make_grid(46341, 46341, 1.0, std::nullopt, std::nullopt),
               std::invalid_argument);
  EXPECT_THROW(make_grid(1 << 16, 1 << 16, 1.0, std::nullopt, std::nullopt),
               std::invalid_argument);
}

TEST(LineTopologyTest, PathShape) {
  const Topology topology = make_line(6);
  EXPECT_EQ(topology.graph.edge_count(), 5u);
  EXPECT_EQ(topology.source, 0);
  EXPECT_EQ(topology.sink, 5);
  EXPECT_EQ(topology.graph.degree(0), 1u);
  EXPECT_EQ(topology.graph.degree(3), 2u);
  EXPECT_THROW(make_line(1), std::invalid_argument);
}

TEST(RingTopologyTest, CycleShape) {
  const Topology topology = make_ring(8);
  EXPECT_EQ(topology.graph.edge_count(), 8u);
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(topology.graph.degree(n), 2u);
  }
  EXPECT_EQ(topology.sink, 4);
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(LineTopologyTest, SourceSinkAtOppositeEndsWithSpacedPositions) {
  const Topology topology = make_line(5, 2.0);
  EXPECT_EQ(topology.source, 0);
  EXPECT_EQ(topology.sink, 4);
  EXPECT_EQ(hop_distance(topology.graph, topology.source, topology.sink), 4);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_DOUBLE_EQ(topology.positions[static_cast<std::size_t>(n)].x,
                     2.0 * n);
    EXPECT_DOUBLE_EQ(topology.positions[static_cast<std::size_t>(n)].y, 0.0);
  }
}

TEST(RingTopologyTest, SourceSinkMaximallySeparated) {
  // Source at node 0, sink diametrically opposite (n/2), so the walk
  // distance around the cycle is the same in both directions (odd rings
  // differ by one hop).
  for (int n : {3, 8, 9}) {
    const Topology topology = make_ring(n);
    EXPECT_EQ(topology.source, 0) << "n=" << n;
    EXPECT_EQ(topology.sink, n / 2) << "n=" << n;
    EXPECT_EQ(hop_distance(topology.graph, topology.source, topology.sink),
              n / 2)
        << "n=" << n;
  }
}

TEST(UnitDiskTopologyTest, GeneratesConnectedGraph) {
  UnitDiskParams params;
  params.node_count = 60;
  params.area_side = 60.0;
  params.radio_range = 14.0;
  params.seed = 7;
  const Topology topology = make_random_unit_disk(params);
  EXPECT_EQ(topology.graph.node_count(), 60);
  EXPECT_TRUE(is_connected(topology.graph));
  EXPECT_NE(topology.source, topology.sink);
}

TEST(UnitDiskTopologyTest, DeterministicForSeed) {
  UnitDiskParams params;
  params.node_count = 40;
  params.area_side = 40.0;
  params.radio_range = 12.0;
  params.seed = 11;
  const Topology a = make_random_unit_disk(params);
  const Topology b = make_random_unit_disk(params);
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.sink, b.sink);
  // Placements are bit-identical for a fixed seed (the generators feed
  // the deterministic sweep engine, so "roughly the same" is not enough)
  // and every edge agrees, not just the count.
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x) << i;
    EXPECT_EQ(a.positions[i].y, b.positions[i].y) << i;
  }
  for (NodeId u = 0; u < params.node_count; ++u) {
    for (NodeId v = 0; v < params.node_count; ++v) {
      EXPECT_EQ(a.graph.has_edge(u, v), b.graph.has_edge(u, v))
          << u << "-" << v;
    }
  }
  // A different seed virtually never reproduces the same placement.
  params.seed = 12;
  const Topology c = make_random_unit_disk(params);
  EXPECT_NE(a.positions[0].x, c.positions[0].x);
}

TEST(UnitDiskTopologyTest, ImpossibleRangeThrows) {
  UnitDiskParams params;
  params.node_count = 50;
  params.area_side = 1000.0;
  params.radio_range = 1.0;  // almost surely disconnected
  params.max_attempts = 3;
  try {
    (void)make_random_unit_disk(params);
    FAIL() << "expected max_attempts exhaustion to throw";
  } catch (const std::runtime_error& error) {
    // The diagnostic names the attempt budget so the operator knows which
    // knob to raise.
    EXPECT_NE(std::string(error.what()).find("3 attempts"),
              std::string::npos)
        << error.what();
  }
}

TEST(UnitDiskTopologyTest, InvalidParamsRejected) {
  UnitDiskParams params;
  params.node_count = 1;
  EXPECT_THROW(make_random_unit_disk(params), std::invalid_argument);
  params.node_count = 10;
  params.radio_range = -1.0;
  EXPECT_THROW(make_random_unit_disk(params), std::invalid_argument);
}

}  // namespace
}  // namespace slpdas::wsn
