// A JSON-Schema *subset* validator over the library's own strict parser
// (src/core/json.hpp), used by schema_test to check every serialised
// document shape against the versioned schema files in tests/schemas/.
//
// Supported keywords: type (string or array of strings), const (string),
// enum (scalars), required, properties, additionalProperties (bool or
// schema), items, minItems/maxItems, minimum, minLength/maxLength,
// definitions and $ref — where a ref is '#/definitions/x' within the
// current file or 'other.schema.json#/definitions/x' across files in the
// same directory. tests/schemas/validate.py mirrors these semantics for
// CI; keep the two implementations in sync.
#pragma once

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.hpp"

namespace slpdas::test {

class SchemaSet {
 public:
  using Value = core::detail::JsonParser::Value;

  explicit SchemaSet(std::string directory)
      : directory_(std::move(directory)) {}

  /// Loads (and caches) one schema file by name; throws on parse errors.
  const Value& load(const std::string& name) {
    const auto found = cache_.find(name);
    if (found != cache_.end()) {
      return found->second;
    }
    std::ifstream in(directory_ + "/" + name, std::ios::binary);
    if (!in) {
      throw std::runtime_error("schema file unreadable: " + name);
    }
    core::detail::JsonParser parser(in);
    return cache_.emplace(name, parser.parse()).first->second;
  }

  /// Validates `value` against the fragment named by `ref`
  /// ("file.schema.json#" for a whole file, or
  /// "file.schema.json#/definitions/x"). Returns every violation found;
  /// an empty vector means the document conforms.
  std::vector<std::string> validate(const Value& value,
                                    const std::string& ref) {
    std::vector<std::string> errors;
    const auto [schema, owner] = resolve(ref, /*current_file=*/"");
    check(value, *schema, owner, "$", errors);
    return errors;
  }

 private:
  using Kind = Value::Kind;

  std::pair<const Value*, std::string> resolve(std::string_view ref,
                                               const std::string& file) {
    const std::size_t hash = ref.find('#');
    std::string owner(hash == std::string_view::npos ? ref
                                                     : ref.substr(0, hash));
    if (owner.empty()) {
      owner = file;
    }
    const Value* node = &load(owner);
    if (hash != std::string_view::npos) {
      std::string_view pointer = ref.substr(hash + 1);
      while (!pointer.empty()) {
        if (pointer.front() == '/') {
          pointer.remove_prefix(1);
          continue;
        }
        const std::size_t slash = pointer.find('/');
        const std::string_view step = pointer.substr(0, slash);
        node = &node->at(step);
        pointer = slash == std::string_view::npos ? std::string_view()
                                                  : pointer.substr(slash);
      }
    }
    return {node, owner};
  }

  static bool has_type(const Value& value, std::string_view name) {
    if (name == "null") {
      return value.kind == Kind::kNull;
    }
    if (name == "boolean") {
      return value.kind == Kind::kBool;
    }
    if (name == "string") {
      return value.kind == Kind::kString;
    }
    if (name == "object") {
      return value.kind == Kind::kObject;
    }
    if (name == "array") {
      return value.kind == Kind::kArray;
    }
    if (name == "number") {
      return value.kind == Kind::kNumber;
    }
    if (name == "integer") {
      // The writers emit integers as plain digit runs; a '.', exponent or
      // fraction in the raw token means the field was not written as one.
      return value.kind == Kind::kNumber &&
             value.raw.find_first_of(".eE") == std::string::npos;
    }
    throw std::runtime_error("schema: unknown type name '" +
                             std::string(name) + "'");
  }

  static bool scalar_equals(const Value& value, const Value& expected) {
    if (expected.kind == Kind::kString) {
      return value.kind == Kind::kString && value.string == expected.string;
    }
    if (expected.kind == Kind::kNumber) {
      return value.kind == Kind::kNumber && value.number == expected.number;
    }
    if (expected.kind == Kind::kBool) {
      return value.kind == Kind::kBool && value.boolean == expected.boolean;
    }
    return expected.kind == Kind::kNull && value.kind == Kind::kNull;
  }

  static std::string describe(const Value& value) {
    switch (value.kind) {
      case Kind::kNull:
        return "null";
      case Kind::kBool:
        return value.boolean ? "true" : "false";
      case Kind::kNumber:
        return value.raw;
      case Kind::kString:
        return "\"" + value.string + "\"";
      case Kind::kObject:
        return "object";
      case Kind::kArray:
        return "array";
    }
    return "?";
  }

  void check(const Value& value, const Value& schema, const std::string& file,
             const std::string& path, std::vector<std::string>& errors) {
    if (const Value* ref = schema.find("$ref")) {
      const auto [target, owner] = resolve(ref->as_string(), file);
      check(value, *target, owner, path, errors);
      return;
    }

    if (const Value* expected = schema.find("const")) {
      if (!scalar_equals(value, *expected)) {
        errors.push_back(path + ": expected " + describe(*expected) +
                         ", got " + describe(value));
      }
    }
    if (const Value* options = schema.find("enum")) {
      bool matched = false;
      for (const Value& option : options->as_array()) {
        matched = matched || scalar_equals(value, option);
      }
      if (!matched) {
        errors.push_back(path + ": " + describe(value) +
                         " is not one of the enum values");
      }
    }

    if (const Value* type = schema.find("type")) {
      bool matched = false;
      if (type->kind == Kind::kArray) {
        for (const Value& name : type->as_array()) {
          matched = matched || has_type(value, name.as_string());
        }
      } else {
        matched = has_type(value, type->as_string());
      }
      if (!matched) {
        errors.push_back(path + ": wrong type, got " + describe(value));
        return;  // the structural keywords below assume the right type
      }
    }

    if (value.kind == Kind::kNumber) {
      if (const Value* minimum = schema.find("minimum")) {
        if (value.number < minimum->as_number()) {
          errors.push_back(path + ": " + value.raw + " is below minimum");
        }
      }
    }
    if (value.kind == Kind::kString) {
      if (const Value* bound = schema.find("minLength")) {
        if (value.string.size() < bound->as_u64()) {
          errors.push_back(path + ": string shorter than minLength");
        }
      }
      if (const Value* bound = schema.find("maxLength")) {
        if (value.string.size() > bound->as_u64()) {
          errors.push_back(path + ": string longer than maxLength");
        }
      }
    }
    if (value.kind == Kind::kArray) {
      if (const Value* bound = schema.find("minItems")) {
        if (value.array.size() < bound->as_u64()) {
          errors.push_back(path + ": fewer than minItems items");
        }
      }
      if (const Value* bound = schema.find("maxItems")) {
        if (value.array.size() > bound->as_u64()) {
          errors.push_back(path + ": more than maxItems items");
        }
      }
      if (const Value* items = schema.find("items")) {
        for (std::size_t i = 0; i < value.array.size(); ++i) {
          check(value.array[i], *items, file,
                path + "[" + std::to_string(i) + "]", errors);
        }
      }
    }
    if (value.kind == Kind::kObject) {
      if (const Value* required = schema.find("required")) {
        for (const Value& key : required->as_array()) {
          if (value.find(key.as_string()) == nullptr) {
            errors.push_back(path + ": missing required key '" +
                             key.as_string() + "'");
          }
        }
      }
      const Value* properties = schema.find("properties");
      if (properties != nullptr) {
        for (const auto& [key, sub] : properties->as_object()) {
          if (const Value* present = value.find(key)) {
            check(*present, sub, file, path + "." + key, errors);
          }
        }
      }
      if (const Value* extra = schema.find("additionalProperties")) {
        if (!(extra->kind == Kind::kBool && extra->boolean)) {
          for (const auto& [key, sub] : value.as_object()) {
            if (properties != nullptr && properties->find(key) != nullptr) {
              continue;
            }
            if (extra->kind == Kind::kBool) {
              errors.push_back(path + ": unexpected key '" + key + "'");
            } else {
              check(sub, *extra, file, path + "." + key, errors);
            }
          }
        }
      }
    }
  }

  std::string directory_;
  std::map<std::string, Value> cache_;
};

}  // namespace slpdas::test
