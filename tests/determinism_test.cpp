// Regression tests pinning the determinism contract: a (config, seed)
// pair fully determines a run, even when many runs execute concurrently,
// and aggregate results are bit-identical for any thread count.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "slpdas/core/experiment.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

ExperimentConfig small_config(ProtocolKind protocol) {
  ExperimentConfig config;
  config.topology = wsn::TopologySpec::grid(5);
  config.protocol = protocol;
  config.parameters = test::fast_parameters(24);
  config.radio = RadioKind::kCasinoLab;
  config.runs = 6;
  config.base_seed = 2017;
  return config;
}

/// Field-by-field equality over the whole RunResult, exact on doubles.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.captured, b.captured);
  EXPECT_EQ(a.capture_time_s.has_value(), b.capture_time_s.has_value());
  if (a.capture_time_s && b.capture_time_s) {
    EXPECT_EQ(*a.capture_time_s, *b.capture_time_s);
  }
  EXPECT_EQ(a.safety_periods, b.safety_periods);
  EXPECT_EQ(a.source_sink_distance, b.source_sink_distance);
  EXPECT_EQ(a.schedule_complete, b.schedule_complete);
  EXPECT_EQ(a.weak_das_ok, b.weak_das_ok);
  EXPECT_EQ(a.strong_das_ok, b.strong_das_ok);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.delivery_latency_s, b.delivery_latency_s);
  EXPECT_EQ(a.control_messages_per_node, b.control_messages_per_node);
  EXPECT_EQ(a.normal_messages_per_node, b.normal_messages_per_node);
  EXPECT_EQ(a.attacker_moves, b.attacker_moves);
}

TEST(DeterminismTest, RunSingleIsAPureFunctionOfConfigAndSeed) {
  for (const ProtocolKind protocol :
       {ProtocolKind::kProtectionlessDas, ProtocolKind::kSlpDas,
        ProtocolKind::kPhantomRouting}) {
    const auto config = small_config(protocol);
    const RunResult a = run_single(config, 99);
    const RunResult b = run_single(config, 99);
    expect_identical(a, b);
  }
}

TEST(DeterminismTest, RunSingleIsDeterministicUnderConcurrency) {
  // Eight threads hammer the same (config, seed); every result must match
  // the serial one, proving runs share no hidden mutable state.
  const auto config = small_config(ProtocolKind::kSlpDas);
  const RunResult expected = run_single(config, 321);

  constexpr int kThreads = 8;
  std::vector<RunResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { results[static_cast<std::size_t>(i)] = run_single(config, 321); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const RunResult& result : results) {
    expect_identical(expected, result);
  }
}

TEST(DeterminismTest, RunExperimentIsBitIdenticalForAnyThreadCount) {
  auto serial = small_config(ProtocolKind::kProtectionlessDas);
  serial.threads = 1;
  auto wide = serial;
  wide.threads = 4;
  const ExperimentResult a = run_experiment(serial);
  const ExperimentResult b = run_experiment(wide);
  EXPECT_EQ(a.capture.successes(), b.capture.successes());
  EXPECT_EQ(a.capture_time_s.mean(), b.capture_time_s.mean());
  EXPECT_EQ(a.capture_time_s.stddev(), b.capture_time_s.stddev());
  EXPECT_EQ(a.delivery_ratio.mean(), b.delivery_ratio.mean());
  EXPECT_EQ(a.delivery_ratio.stddev(), b.delivery_ratio.stddev());
  EXPECT_EQ(a.delivery_latency_s.mean(), b.delivery_latency_s.mean());
  EXPECT_EQ(a.control_messages_per_node.mean(),
            b.control_messages_per_node.mean());
  EXPECT_EQ(a.normal_messages_per_node.mean(),
            b.normal_messages_per_node.mean());
  EXPECT_EQ(a.attacker_moves.mean(), b.attacker_moves.mean());
  EXPECT_EQ(a.schedule_incomplete_runs, b.schedule_incomplete_runs);
  EXPECT_EQ(a.weak_das_failures, b.weak_das_failures);
  EXPECT_EQ(a.strong_das_failures, b.strong_das_failures);
}

TEST(DeterminismTest, PhantomRoutingRunMatchesGoldenSnapshot) {
  // Golden values captured from the PR-3 code base (before the typed
  // event core): the phantom-routing path is not covered by the sweep
  // document fingerprint in sweep_test, so this run pins it separately.
  // Regenerate deliberately (and say so in the commit) if phantom
  // behaviour is meant to change.
  const RunResult r = run_single(small_config(ProtocolKind::kPhantomRouting), 99);
  EXPECT_FALSE(r.captured);
  EXPECT_FALSE(r.capture_time_s.has_value());
  EXPECT_EQ(r.safety_periods, 8);
  EXPECT_EQ(r.source_sink_distance, 4);
  EXPECT_EQ(r.delivery_ratio, 0.5);
  EXPECT_EQ(r.delivery_latency_s, 0.23699300000000001);
  EXPECT_EQ(r.control_messages_per_node, 4.0);
  EXPECT_EQ(r.normal_messages_per_node, 5.6799999999999997);
  EXPECT_EQ(r.attacker_moves, 5);
}

TEST(DeterminismTest, PerfCountersAreDeterministicAndAggregate) {
  const auto config = small_config(ProtocolKind::kSlpDas);
  const RunResult a = run_single(config, 7);
  const RunResult b = run_single(config, 7);
  EXPECT_GT(a.events_executed, 0u);
  EXPECT_GT(a.deliveries, 0u);
  EXPECT_GT(a.timer_fires, 0u);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.timer_fires, b.timer_fires);

  const ExperimentResult sum = aggregate_runs({a, b}, false);
  EXPECT_EQ(sum.events_executed, 2 * a.events_executed);
  EXPECT_EQ(sum.deliveries, 2 * a.deliveries);
  EXPECT_EQ(sum.timer_fires, 2 * a.timer_fires);
}

TEST(DeterminismTest, AggregateRunsFoldsInGivenOrder)
{
  std::vector<RunResult> runs(3);
  runs[0].delivery_ratio = 0.25;
  runs[1].delivery_ratio = 0.5;
  runs[1].captured = true;
  runs[1].capture_time_s = 1.5;
  runs[2].delivery_ratio = 1.0;
  runs[2].schedule_complete = true;
  runs[2].weak_das_ok = true;

  const ExperimentResult checked = aggregate_runs(runs, true);
  EXPECT_EQ(checked.runs, 3);
  EXPECT_EQ(checked.capture.trials(), 3u);
  EXPECT_EQ(checked.capture.successes(), 1u);
  EXPECT_EQ(checked.capture_time_s.count(), 1u);
  EXPECT_EQ(checked.capture_time_s.mean(), 1.5);
  EXPECT_EQ(checked.delivery_ratio.mean(), (0.25 + 0.5 + 1.0) / 3.0);
  EXPECT_EQ(checked.schedule_incomplete_runs, 2);
  EXPECT_EQ(checked.weak_das_failures, 2);
  EXPECT_EQ(checked.strong_das_failures, 3);

  const ExperimentResult unchecked = aggregate_runs(runs, false);
  EXPECT_EQ(unchecked.weak_das_failures, 0);
  EXPECT_EQ(unchecked.strong_das_failures, 0);
}

}  // namespace
}  // namespace slpdas::core
