// Tests for Phases 2 (node locator) and 3 (slot refinement) of the SLP
// protocol (paper Figures 3-4): the decoy path exists, fires earliest,
// preserves the DAS property, and measurably delays the verifying
// attacker compared to the protectionless schedule.
#include <gtest/gtest.h>

#include "slpdas/verify/das_checker.hpp"
#include "slpdas/verify/safety_period.hpp"
#include "slpdas/verify/verify_schedule.hpp"
#include "test_util.hpp"

namespace slpdas::slp {
namespace {

using test::fast_parameters;
using test::make_protectionless_net;
using test::make_slp_net;
using test::run_setup;

TEST(SlpPhasesTest, RedirectionStartNodeEmerges) {
  auto net = make_slp_net(wsn::make_grid(7), fast_parameters(30), 1);
  run_setup(net);
  int starts = 0;
  for (wsn::NodeId n = 0; n < net.topology.graph.node_count(); ++n) {
    starts += net.slp_node(n).is_redirection_start() ? 1 : 0;
  }
  EXPECT_GE(starts, 1);
}

TEST(SlpPhasesTest, DecoyPathNodesExistAndAreBounded) {
  // The decoy is best-effort per seed (the locator can dead-end), so sweep
  // seeds: most runs must grow a decoy, and every run must respect the CL
  // bound.
  core::Parameters params = fast_parameters(30);
  params.search_distance = 2;
  int runs_with_decoy = 0;
  const int seeds = 5;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    auto net = make_slp_net(wsn::make_grid(7), params, seed);
    run_setup(net);
    int decoy_nodes = 0;
    for (wsn::NodeId n = 0; n < net.topology.graph.node_count(); ++n) {
      decoy_nodes += net.slp_node(n).on_decoy_path() ? 1 : 0;
    }
    const int change_length = params.resolved_change_length(net.topology);
    // Each of the (<= search_retries) searches grows at most one decoy path.
    EXPECT_LE(decoy_nodes,
              change_length * params.slp_config(net.topology).search_retries)
        << "seed " << seed;
    runs_with_decoy += decoy_nodes > 0 ? 1 : 0;
  }
  EXPECT_GE(runs_with_decoy, (seeds + 1) / 2);
}

TEST(SlpPhasesTest, GlobalMinimumSlotIsOnDecoyPath) {
  core::Parameters params = fast_parameters(30);
  params.search_distance = 2;
  auto net = make_slp_net(wsn::make_grid(7), params, 3);
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  ASSERT_TRUE(schedule.complete());
  wsn::NodeId min_node = 0;
  for (wsn::NodeId n = 1; n < net.topology.graph.node_count(); ++n) {
    if (schedule.slot(n) < schedule.slot(min_node)) {
      min_node = n;
    }
  }
  EXPECT_TRUE(net.slp_node(min_node).on_decoy_path())
      << "global min slot at node " << min_node << " is not on the decoy";
}

TEST(SlpPhasesTest, RefinementPreservesWeakDas) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto net = make_slp_net(wsn::make_grid(7), fast_parameters(30), seed);
    run_setup(net);
    const auto schedule = das::extract_schedule(*net.simulator);
    EXPECT_TRUE(schedule.complete()) << "seed " << seed;
    const auto weak = verify::check_weak_das(net.topology.graph, schedule,
                                             net.topology.sink);
    EXPECT_TRUE(weak.ok()) << "seed " << seed << ": " << weak.summary();
  }
}

TEST(SlpPhasesTest, RefinementPreservesCollisionFreedom) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    auto net = make_slp_net(wsn::make_grid(5), fast_parameters(30), seed);
    run_setup(net);
    const auto schedule = das::extract_schedule(*net.simulator);
    const auto result = verify::check_noncolliding(
        net.topology.graph, schedule, net.topology.sink);
    EXPECT_TRUE(result.ok()) << "seed " << seed << ": " << result.summary();
  }
}

TEST(SlpPhasesTest, SearchAndChangeMessagesAreFew) {
  auto net = make_slp_net(wsn::make_grid(11), fast_parameters(34), 5);
  run_setup(net);
  const auto& by_type = net.simulator->sends_by_type();
  const auto count = [&by_type](const char* name) {
    const auto it = by_type.find(name);
    return it == by_type.end() ? std::uint64_t{0} : it->second;
  };
  // "negligible message overhead": the whole Phase 2+3 machinery costs a
  // handful of messages in a 121-node network.
  EXPECT_GE(count("SEARCH"), 1u);
  EXPECT_LE(count("SEARCH"), 40u);
  EXPECT_GE(count("CHANGE"), 1u);
  EXPECT_LE(count("CHANGE"), 40u);
}

TEST(SlpPhasesTest, VerifiedCaptureNeverMoreFrequentThanProtectionless) {
  // Definition 5 condition 2, checked with Algorithm 1 instead of
  // simulation: across a seed sweep, the deterministic min-slot attacker
  // must capture under the SLP schedule in at most as many seeds as under
  // the protectionless schedule, and each capture it does achieve must not
  // be faster than the baseline's on the same seed.
  const core::Parameters params = fast_parameters(30);
  int base_captures = 0;
  int slp_captures = 0;
  const int cap = 1000;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto base_net = make_protectionless_net(wsn::make_grid(7), params, seed);
    run_setup(base_net);
    auto slp_net = make_slp_net(wsn::make_grid(7), params, seed);
    run_setup(slp_net);

    const auto base_schedule = das::extract_schedule(*base_net.simulator);
    const auto slp_schedule = das::extract_schedule(*slp_net.simulator);
    if (!base_schedule.complete() || !slp_schedule.complete()) {
      continue;
    }
    const verify::SafetyPeriod safety = verify::compute_safety_period(
        base_net.topology.graph, base_net.topology.source,
        base_net.topology.sink);
    verify::VerifyAttacker attacker;
    attacker.start = base_net.topology.sink;
    const auto base_capture = verify::min_capture_period(
        base_net.topology.graph, base_schedule, attacker,
        base_net.topology.source, cap);
    const auto slp_capture = verify::min_capture_period(
        slp_net.topology.graph, slp_schedule, attacker,
        slp_net.topology.source, cap);
    base_captures +=
        base_capture && *base_capture <= safety.periods ? 1 : 0;
    slp_captures += slp_capture && *slp_capture <= safety.periods ? 1 : 0;
  }
  EXPECT_LE(slp_captures, base_captures);
}

TEST(SlpPhasesTest, ConfigValidation) {
  SlpConfig config;
  config.das = fast_parameters(24).das_config();
  config.search_start_period = 16;
  config.search_distance = 0;
  EXPECT_THROW(SlpDas(config, 0, 1), std::invalid_argument);
  config.search_distance = 3;
  config.change_length = 0;
  EXPECT_THROW(SlpDas(config, 0, 1), std::invalid_argument);
  config.change_length = 4;
  config.search_start_period = 1;  // before discovery ends
  EXPECT_THROW(SlpDas(config, 0, 1), std::invalid_argument);
  config.search_start_period = 99;  // after data phase starts
  EXPECT_THROW(SlpDas(config, 0, 1), std::invalid_argument);
}

TEST(SlpPhasesTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    auto net = make_slp_net(wsn::make_grid(5), fast_parameters(30), seed);
    run_setup(net);
    return das::extract_schedule(*net.simulator);
  };
  EXPECT_EQ(run(42), run(42));
}

class SlpSearchDistanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SlpSearchDistanceSweep, WeakDasHoldsForAllSearchDistances) {
  core::Parameters params = fast_parameters(30);
  params.search_distance = GetParam();
  auto net = make_slp_net(wsn::make_grid(9), params, 23);
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  EXPECT_TRUE(schedule.complete());
  const auto weak = verify::check_weak_das(net.topology.graph, schedule,
                                           net.topology.sink);
  EXPECT_TRUE(weak.ok()) << "SD=" << GetParam() << ": " << weak.summary();
}

INSTANTIATE_TEST_SUITE_P(SearchDistances, SlpSearchDistanceSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace slpdas::slp
