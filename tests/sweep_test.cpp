// Tests for the parallel scenario-sweep engine: grid expansion, per-cell
// seed derivation stability, deterministic execution for any thread
// count, thread-pool sharing across cells, and JSON round-tripping.
#include "slpdas/core/sweep.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "slpdas/core/scenario.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

ExperimentConfig small_base(int runs = 4) {
  ExperimentConfig config;
  config.topology = wsn::TopologySpec::grid(5);
  config.parameters = test::fast_parameters(24);
  config.radio = RadioKind::kCasinoLab;
  config.runs = runs;
  config.check_schedules = false;
  return config;
}

/// A 2x2 (side x protocol) grid of cheap cells.
std::vector<SweepCell> small_cells(int runs = 4) {
  SweepGrid grid(small_base(runs));
  grid.axis("side", {{"5",
                      [](ExperimentConfig& config) {
                        config.topology = wsn::TopologySpec::grid(5);
                      }},
                     {"7",
                      [](ExperimentConfig& config) {
                        config.topology = wsn::TopologySpec::grid(7);
                      }}});
  grid.axis("protocol",
            {{"protectionless-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kProtectionlessDas;
              }},
             {"slp-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kSlpDas;
              }}});
  return grid.expand();
}

void expect_same_result(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.capture.trials(), b.capture.trials());
  EXPECT_EQ(a.capture.successes(), b.capture.successes());
  // Aggregation happens in run-index order, so even the floating-point
  // accumulators must agree to the last bit.
  EXPECT_EQ(a.capture_time_s.mean(), b.capture_time_s.mean());
  EXPECT_EQ(a.capture_time_s.stddev(), b.capture_time_s.stddev());
  EXPECT_EQ(a.delivery_ratio.mean(), b.delivery_ratio.mean());
  EXPECT_EQ(a.delivery_latency_s.mean(), b.delivery_latency_s.mean());
  EXPECT_EQ(a.control_messages_per_node.mean(),
            b.control_messages_per_node.mean());
  EXPECT_EQ(a.normal_messages_per_node.mean(),
            b.normal_messages_per_node.mean());
  EXPECT_EQ(a.attacker_moves.mean(), b.attacker_moves.mean());
  EXPECT_EQ(a.schedule_incomplete_runs, b.schedule_incomplete_runs);
}

TEST(SweepGridTest, ExpandsCartesianProductRowMajor) {
  const auto cells = small_cells();
  ASSERT_EQ(cells.size(), 4u);
  // The last axis (protocol) varies fastest.
  EXPECT_EQ(cells[0].label, "side=5/protocol=protectionless-das");
  EXPECT_EQ(cells[1].label, "side=5/protocol=slp-das");
  EXPECT_EQ(cells[2].label, "side=7/protocol=protectionless-das");
  EXPECT_EQ(cells[3].label, "side=7/protocol=slp-das");
  ASSERT_EQ(cells[3].coordinates.size(), 2u);
  EXPECT_EQ(cells[3].coordinates[0].first, "side");
  EXPECT_EQ(cells[3].coordinates[0].second, "7");
  EXPECT_EQ(cells[3].coordinates[1].first, "protocol");
  EXPECT_EQ(cells[3].coordinates[1].second, "slp-das");
}

TEST(SweepGridTest, MutatorsApplyOnTopOfBase) {
  const auto cells = small_cells();
  EXPECT_EQ(cells[0].config.protocol, ProtocolKind::kProtectionlessDas);
  EXPECT_EQ(cells[1].config.protocol, ProtocolKind::kSlpDas);
  // Configs carry specs, not graphs: the cells stay cheap values and the
  // node count is known without materialising anything.
  EXPECT_EQ(cells[0].config.topology.node_count(), 25);
  EXPECT_EQ(cells[2].config.topology.node_count(), 49);
  // Base fields untouched by any axis survive into every cell.
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.config.radio, RadioKind::kCasinoLab);
    EXPECT_EQ(cell.config.runs, 4);
  }
}

TEST(SweepGridTest, EmptyGridAndEmptyAxisExpandToNothing) {
  EXPECT_TRUE(SweepGrid(small_base()).expand().empty());
  SweepGrid grid(small_base());
  grid.axis("side", {});
  EXPECT_TRUE(grid.expand().empty());
}

TEST(SweepSeedTest, CellSeedDependsOnlyOnBaseSeedAndLabel) {
  const std::uint64_t seed = derive_cell_seed(42, "side=11/protocol=slp-das");
  EXPECT_EQ(seed, derive_cell_seed(42, "side=11/protocol=slp-das"));
  EXPECT_NE(seed, derive_cell_seed(43, "side=11/protocol=slp-das"));
  EXPECT_NE(seed, derive_cell_seed(42, "side=15/protocol=slp-das"));
}

TEST(SweepSeedTest, CellResultsInvariantUnderGridEdits) {
  // Run the full grid, then just one of its cells: the shared cell must
  // produce identical results because its seed keys off the label, not
  // the cell's position in (or the size of) the grid.
  const auto cells = small_cells();
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 9;
  const SweepResult full = run_sweep(cells, options);
  const SweepResult just_last = run_sweep({cells[3]}, options);
  ASSERT_EQ(just_last.cells.size(), 1u);
  EXPECT_EQ(full.cells[3].cell_seed, just_last.cells[0].cell_seed);
  expect_same_result(full.cells[3].result, just_last.cells[0].result);
}

TEST(SweepRunTest, DeterministicAcrossThreadCounts) {
  const auto cells = small_cells();
  SweepOptions serial;
  serial.threads = 1;
  serial.base_seed = 5;
  SweepOptions wide;
  wide.threads = 4;
  wide.base_seed = 5;
  const SweepResult a = run_sweep(cells, serial);
  const SweepResult b = run_sweep(cells, wide);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].label, b.cells[i].label);
    EXPECT_EQ(a.cells[i].cell_seed, b.cells[i].cell_seed);
    expect_same_result(a.cells[i].result, b.cells[i].result);
  }
}

TEST(SweepRunTest, SharesOnePoolAcrossAllCells) {
  // Six cells on a two-worker pool: a per-experiment pool would have
  // spawned 2 workers per cell (12 distinct ids); the shared pool never
  // exceeds its size no matter how many cells run.
  SweepGrid grid(small_base(2));
  std::vector<SweepGrid::AxisValue> values;
  for (int i = 0; i < 6; ++i) {
    values.push_back({std::to_string(i), nullptr});
  }
  grid.axis("cell", std::move(values));
  SweepOptions options;
  options.threads = 2;
  const SweepResult result = run_sweep(grid.expand(), options);
  EXPECT_EQ(result.threads, 2);
  EXPECT_GE(result.distinct_worker_threads, 1);
  EXPECT_LE(result.distinct_worker_threads, 2);
}

TEST(SweepRunTest, ExternalPoolIsReusedAcrossSweeps) {
  ThreadPool pool(2);
  const auto cells = small_cells(2);
  SweepOptions options;
  const SweepResult first = run_sweep(cells, options, pool);
  const SweepResult second = run_sweep(cells, options, pool);
  EXPECT_EQ(first.threads, 2);
  EXPECT_EQ(second.threads, 2);
  expect_same_result(first.cells[0].result, second.cells[0].result);
}

TEST(SweepSeedTest, UnseededAxisSharesOneSeedStream) {
  // With the protocol axis marked unseeded, both protocols face the same
  // per-run seeds (common random numbers), so their cell seeds match
  // while their labels stay distinct.
  SweepGrid grid(small_base(2));
  grid.axis("side", {{"5", nullptr}});
  grid.axis("protocol",
            {{"protectionless-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kProtectionlessDas;
              }},
             {"slp-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kSlpDas;
              }}},
            /*seeded=*/false);
  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_NE(cells[0].label, cells[1].label);
  EXPECT_EQ(cells[0].seed_label, "side=5");
  EXPECT_EQ(cells[1].seed_label, "side=5");
  const SweepResult result = run_sweep(cells, SweepOptions{});
  EXPECT_EQ(result.cells[0].cell_seed, result.cells[1].cell_seed);
}

TEST(SweepRunTest, RejectsDuplicateLabels) {
  auto cells = small_cells();
  cells[1].label = cells[0].label;
  EXPECT_THROW((void)run_sweep(cells, SweepOptions{}),
               std::invalid_argument);
}

TEST(SweepRunTest, RejectsCellWithNoRuns) {
  auto cells = small_cells();
  cells[1].config.runs = 0;
  EXPECT_THROW((void)run_sweep(cells, SweepOptions{}),
               std::invalid_argument);
}

TEST(SweepRunTest, ProgressReportsEveryCell) {
  std::ostringstream progress;
  SweepOptions options;
  options.threads = 2;
  options.progress = &progress;
  (void)run_sweep(small_cells(2), options);
  const std::string text = progress.str();
  for (const SweepCell& cell : small_cells(2)) {
    EXPECT_NE(text.find(cell.label), std::string::npos) << text;
  }
  EXPECT_NE(text.find("[4/4]"), std::string::npos) << text;
  // Output is line-buffered: whole lines only, each a complete record.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::istringstream lines(text);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_NE(line.find(" capture="), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, 4);
}

TEST(SweepJsonTest, RoundTripsThroughTheV2Schema) {
  const auto cells = small_cells();
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 11;
  const SweepResult sweep = run_sweep(cells, options);

  std::stringstream stream;
  write_sweep_json(stream, sweep, "sweep_test");
  const SweepJson parsed = read_sweep_json(stream);

  EXPECT_EQ(parsed.schema, "slpdas.sweep.v2");
  EXPECT_EQ(parsed.name, "sweep_test");
  EXPECT_EQ(parsed.base_seed, 11u);
  EXPECT_EQ(parsed.threads, sweep.threads);
  EXPECT_EQ(parsed.shard_index, 0);
  EXPECT_EQ(parsed.shard_count, 1);
  EXPECT_EQ(parsed.cells_total, cells.size());
  ASSERT_EQ(parsed.cells.size(), sweep.cells.size());
  for (std::size_t i = 0; i < parsed.cells.size(); ++i) {
    const SweepJsonCell& json_cell = parsed.cells[i];
    const SweepCellResult& cell = sweep.cells[i];
    EXPECT_EQ(json_cell.index, i);
    EXPECT_EQ(json_cell.label, cell.label);
    EXPECT_EQ(json_cell.coordinates, cell.coordinates);
    EXPECT_EQ(json_cell.cell_seed, cell.cell_seed);
    EXPECT_EQ(json_cell.runs, cell.runs);
    EXPECT_EQ(json_cell.capture_trials, cell.result.capture.trials());
    EXPECT_EQ(json_cell.capture_successes, cell.result.capture.successes());
    // Doubles print with max_digits10, so the round-trip is exact.
    EXPECT_EQ(json_cell.capture_ratio, cell.result.capture.ratio());
    const auto [low, high] = cell.result.capture.wilson95();
    EXPECT_EQ(json_cell.capture_wilson95_low, low);
    EXPECT_EQ(json_cell.capture_wilson95_high, high);
    EXPECT_EQ(json_cell.delivery_ratio.count, cell.result.delivery_ratio.count());
    EXPECT_EQ(json_cell.delivery_ratio.mean, cell.result.delivery_ratio.mean());
    EXPECT_EQ(json_cell.delivery_ratio.stddev,
              cell.result.delivery_ratio.stddev());
    EXPECT_EQ(json_cell.attacker_moves.mean, cell.result.attacker_moves.mean());
    EXPECT_EQ(json_cell.slot_band_span.count,
              cell.result.slot_band_span.count());
    EXPECT_EQ(json_cell.slot_band_span.mean, cell.result.slot_band_span.mean());
    EXPECT_EQ(json_cell.schedule_density.mean,
              cell.result.schedule_density.mean());
    EXPECT_EQ(json_cell.schedule_incomplete_runs,
              cell.result.schedule_incomplete_runs);
  }
}

TEST(SweepJsonTest, ReadsLegacyV1Documents) {
  // v1 documents carry no shard object, no per-cell index, and no
  // slot-band stats; the reader defaults all of them.
  const std::string v1 =
      "{\"schema\": \"slpdas.sweep.v1\", \"name\": \"old\", \"threads\": 2, "
      "\"wall_seconds\": 0, \"cells\": [{\"label\": \"side=5\", "
      "\"coordinates\": {\"side\": \"5\"}, \"cell_seed\": 7, \"runs\": 1, "
      "\"capture\": {\"trials\": 1, \"successes\": 0, \"ratio\": 0, "
      "\"wilson95\": [0, 0.5]}, "
      "\"capture_time_s\": {\"count\": 0, \"mean\": 0, \"stddev\": 0, "
      "\"min\": null, \"max\": null}, "
      "\"delivery_ratio\": {\"count\": 1, \"mean\": 1, \"stddev\": 0, "
      "\"min\": 1, \"max\": 1}, "
      "\"delivery_latency_s\": {\"count\": 1, \"mean\": 0, \"stddev\": 0, "
      "\"min\": 0, \"max\": 0}, "
      "\"control_messages_per_node\": {\"count\": 1, \"mean\": 0, "
      "\"stddev\": 0, \"min\": 0, \"max\": 0}, "
      "\"normal_messages_per_node\": {\"count\": 1, \"mean\": 0, "
      "\"stddev\": 0, \"min\": 0, \"max\": 0}, "
      "\"attacker_moves\": {\"count\": 1, \"mean\": 0, \"stddev\": 0, "
      "\"min\": 0, \"max\": 0}, "
      "\"schedule_incomplete_runs\": 0, \"weak_das_failures\": 0, "
      "\"strong_das_failures\": 0, \"wall_seconds\": 0}]}";
  std::stringstream stream(v1);
  const SweepJson parsed = read_sweep_json(stream);
  EXPECT_EQ(parsed.schema, "slpdas.sweep.v1");
  EXPECT_EQ(parsed.base_seed, 0u);
  EXPECT_EQ(parsed.shard_index, 0);
  EXPECT_EQ(parsed.shard_count, 1);
  EXPECT_EQ(parsed.cells_total, 1u);
  ASSERT_EQ(parsed.cells.size(), 1u);
  EXPECT_EQ(parsed.cells[0].index, 0u);
  EXPECT_EQ(parsed.cells[0].slot_band_span.count, 0u);
}

TEST(SweepJsonTest, EmptyStatsSerialiseMinMaxAsNull) {
  SweepResult sweep;
  sweep.cells.resize(1);
  sweep.cells[0].label = "empty";
  sweep.cells[0].runs = 0;
  std::stringstream stream;
  write_sweep_json(stream, sweep, "empty");
  EXPECT_NE(stream.str().find("\"min\": null"), std::string::npos);
  const SweepJson parsed = read_sweep_json(stream);
  ASSERT_EQ(parsed.cells.size(), 1u);
  EXPECT_TRUE(std::isnan(parsed.cells[0].capture_time_s.min));
  EXPECT_TRUE(std::isnan(parsed.cells[0].capture_time_s.max));
}

TEST(SweepJsonTest, RejectsMalformedAndUnknownSchema) {
  {
    std::stringstream stream("{\"schema\": \"slpdas.sweep.v999\"}");
    EXPECT_THROW((void)read_sweep_json(stream), std::runtime_error);
  }
  {
    std::stringstream stream("{\"schema\": ");
    EXPECT_THROW((void)read_sweep_json(stream), std::runtime_error);
  }
  {
    std::stringstream stream("not json at all");
    EXPECT_THROW((void)read_sweep_json(stream), std::runtime_error);
  }
  {
    // Wrong-typed fields must throw, not parse as empty.
    std::stringstream stream(
        "{\"schema\": \"slpdas.sweep.v1\", \"name\": \"x\", \"threads\": 1, "
        "\"wall_seconds\": 0, \"distinct_worker_threads\": 1, \"cells\": 0}");
    EXPECT_THROW((void)read_sweep_json(stream), std::runtime_error);
  }
  {
    // Numbers with trailing garbage must not silently truncate.
    std::stringstream stream(
        "{\"schema\": \"slpdas.sweep.v1\", \"name\": \"x\", \"threads\": 1, "
        "\"wall_seconds\": 1-2, \"cells\": []}");
    EXPECT_THROW((void)read_sweep_json(stream), std::runtime_error);
  }
}

/// Minimal parseable v1 document with `name` spliced in verbatim, for
/// exercising the string-escape grammar through the public reader.
SweepJson parse_with_name(const std::string& name_json) {
  std::stringstream stream(
      "{\"schema\": \"slpdas.sweep.v1\", \"name\": " + name_json +
      ", \"threads\": 1, \"wall_seconds\": 0, "
      "\"distinct_worker_threads\": 1, \"cells\": []}");
  return read_sweep_json(stream);
}

TEST(SweepJsonTest, UnicodeEscapesRequireExactlyFourHexDigits) {
  EXPECT_EQ(parse_with_name("\"\\u0041\"").name, "A");
  EXPECT_EQ(parse_with_name("\"\\u00e9\"").name, "\xc3\xa9");  // é, 2-byte
  // std::stoi's forgiving grammar accepted all of these: fewer than four
  // digits before the closing quote, embedded whitespace and signs.
  EXPECT_THROW((void)parse_with_name("\"\\u12\""), std::runtime_error);
  EXPECT_THROW((void)parse_with_name("\"\\u12g4\""), std::runtime_error);
  EXPECT_THROW((void)parse_with_name("\"\\u 041\""), std::runtime_error);
  EXPECT_THROW((void)parse_with_name("\"\\u+041\""), std::runtime_error);
  EXPECT_THROW((void)parse_with_name("\"\\u\""), std::runtime_error);
  // Lone surrogate halves are not scalar values; encoding them as 3-byte
  // UTF-8 would emit CESU-8 garbage downstream consumers choke on.
  EXPECT_THROW((void)parse_with_name("\"\\ud800\""), std::runtime_error);
  EXPECT_THROW((void)parse_with_name("\"\\udfff\""), std::runtime_error);
}

TEST(SweepJsonTest, NumberParsingIgnoresTheProcessLocale) {
  // Under a comma-decimal locale, std::stod reads "0.05" as 0 — silently
  // zeroing every ratio in a reloaded document. from_chars never
  // consults LC_NUMERIC, so parsing must be identical in any locale.
  const char* applied = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (applied == nullptr) {
    applied = std::setlocale(LC_NUMERIC, "de_DE");
  }
  if (applied == nullptr) {
    GTEST_SKIP() << "no de_DE locale available on this system";
  }
  std::stringstream stream(
      "{\"schema\": \"slpdas.sweep.v1\", \"name\": \"x\", \"threads\": 1, "
      "\"wall_seconds\": 0.05, \"distinct_worker_threads\": 1, "
      "\"cells\": []}");
  SweepJson parsed;
  try {
    parsed = read_sweep_json(stream);
  } catch (...) {
    std::setlocale(LC_NUMERIC, "C");
    throw;
  }
  std::setlocale(LC_NUMERIC, "C");
  EXPECT_EQ(parsed.wall_seconds, 0.05);
}

// ---------------------------------------------------------------------------
// Golden fingerprints. These constants pin the behavioural contract:
// identical (grid, protocol, seed) must keep producing bit-identical
// documents across refactors of the simulator internals. If a change here
// is INTENDED (a new axis, a protocol fix), regenerate the constants and
// say so loudly in the commit message; an unintended mismatch means the
// refactor changed results. The document hash was regenerated ONCE for
// the spec-layer refactor, after a line diff of the before/after
// documents showed the only change to be the added per-cell "config"
// block — every metric byte of the PR-4 constant's document is unchanged
// (the per-metric snapshot below still pins those exact values).
// ---------------------------------------------------------------------------

std::uint64_t fnv1a_bytes(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

TEST(GoldenFingerprintTest, SmallSweepDocumentIsByteStable) {
  SweepGrid grid(small_base(3));
  grid.axis("side", {{"5",
                      [](ExperimentConfig& config) {
                        config.topology = wsn::TopologySpec::grid(5);
                      }},
                     {"7",
                      [](ExperimentConfig& config) {
                        config.topology = wsn::TopologySpec::grid(7);
                      }}});
  grid.axis("protocol",
            {{"protectionless-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kProtectionlessDas;
              }},
             {"slp-das",
              [](ExperimentConfig& config) {
                config.protocol = ProtocolKind::kSlpDas;
              }}});
  const auto cells = grid.expand();
  EXPECT_EQ(hash_sweep_grid(cells), 0x6b90a23f404d5439ULL);

  SweepOptions options;
  options.threads = 2;
  options.base_seed = 2017;
  options.deterministic_timing = true;
  const SweepResult sweep = run_sweep(cells, options);
  std::ostringstream out;
  write_sweep_json(out, sweep, "golden");
  // Every byte of the deterministic document: all metrics of all four
  // cells, double formatting included (regenerated for the config block;
  // see the section comment above).
  EXPECT_EQ(fnv1a_bytes(out.str()), 0x5f6355cafa2a2d15ULL);
  // The config block is present in deterministic documents (unlike perf:
  // the specs are part of the experiment's identity, not telemetry).
  EXPECT_NE(out.str().find("\"config\": {\"topology\": \"grid:5\", "
                           "\"protocol\": \"slp-das\", \"attacker\": "
                           "\"R=1,H=0,M=1,D=first-heard\", \"radio\": "
                           "\"casino-lab\"}"),
            std::string::npos);

  // A readable snapshot of one cell, so a mismatch names the drifted
  // metric instead of just a hash.
  const SweepJson document = to_sweep_json(sweep, "golden");
  ASSERT_EQ(document.cells.size(), 4u);
  const SweepJsonCell& cell = document.cells[0];
  EXPECT_EQ(cell.label, "side=5/protocol=protectionless-das");
  EXPECT_EQ(cell.capture_trials, 3u);
  EXPECT_EQ(cell.capture_successes, 0u);
  EXPECT_EQ(cell.delivery_ratio.mean, 0.88888888888888884);
  EXPECT_EQ(cell.delivery_latency_s.mean, 0.24383333333333332);
  EXPECT_EQ(cell.control_messages_per_node.mean, 12.786666666666667);
  EXPECT_EQ(cell.normal_messages_per_node.mean, 7.6799999999999997);
  EXPECT_EQ(cell.attacker_moves.mean, 7.666666666666667);
  EXPECT_EQ(cell.attacker_moves.stddev, 0.57735026918962573);
  EXPECT_EQ(document.cells[2].capture_successes, 1u);  // side=7 baseline
  // Deterministic documents must never grow the perf block — its absence
  // is what keeps them byte-identical across schema-extending releases.
  EXPECT_FALSE(cell.has_perf);
  EXPECT_EQ(out.str().find("\"perf\""), std::string::npos);
}

TEST(GoldenFingerprintTest, BuiltinScenarioGridsAreStable) {
  // hash_sweep_grid is a pure function of labels, seed labels and run
  // counts: these pins make any accidental edit of the published grids
  // (axis values, run counts, cell order) fail loudly.
  ScenarioRegistry registry;
  register_builtin_scenarios(registry);
  const ScenarioOptions defaults;
  ScenarioOptions smoke;
  smoke.smoke = true;
  const struct {
    const char* name;
    std::uint64_t default_hash;
    std::uint64_t smoke_hash;
  } kExpected[] = {
      {"fig5a", 0x5fac2a7b22a1559eULL, 0xc8d00cbfeff20f42ULL},
      {"fig5b", 0x002a88a5fe1b8222ULL, 0x806429abca4b85a6ULL},
      {"perf_sim", 0x8cd7e075782f686fULL, 0x08cc739a1a98e897ULL},
  };
  for (const auto& expected : kExpected) {
    SCOPED_TRACE(expected.name);
    const Scenario* scenario = registry.find(expected.name);
    ASSERT_NE(scenario, nullptr);
    EXPECT_EQ(hash_sweep_grid(scenario->make_cells(defaults)),
              expected.default_hash);
    EXPECT_EQ(hash_sweep_grid(scenario->make_cells(smoke)),
              expected.smoke_hash);
  }
}

TEST(SweepJsonTest, PerfBlockRoundTripsInRealClockDocuments) {
  const auto cells = small_cells(2);
  SweepOptions options;
  options.threads = 2;
  options.base_seed = 11;
  const SweepResult sweep = run_sweep(cells, options);  // real clocks

  std::stringstream stream;
  write_sweep_json(stream, sweep, "perf_roundtrip");
  EXPECT_NE(stream.str().find("\"perf\""), std::string::npos);
  const SweepJson parsed = read_sweep_json(stream);
  ASSERT_EQ(parsed.cells.size(), sweep.cells.size());
  for (std::size_t i = 0; i < parsed.cells.size(); ++i) {
    const SweepJsonCell& cell = parsed.cells[i];
    ASSERT_TRUE(cell.has_perf) << cell.label;
    EXPECT_EQ(cell.perf_events, sweep.cells[i].result.events_executed);
    EXPECT_EQ(cell.perf_deliveries, sweep.cells[i].result.deliveries);
    EXPECT_EQ(cell.perf_timer_fires, sweep.cells[i].result.timer_fires);
    EXPECT_GT(cell.perf_events, 0u);
    EXPECT_GE(cell.perf_events,
              cell.perf_deliveries + cell.perf_timer_fires);
    if (cell.wall_seconds > 0.0) {
      EXPECT_GT(cell.perf_events_per_sec, 0.0);
    }
  }
  // ...and the reparse re-serialises byte-identically, perf block included.
  std::ostringstream rewritten;
  write_sweep_json(rewritten, parsed);
  EXPECT_EQ(rewritten.str(), stream.str());
}

TEST(SweepJsonTest, EscapesLabelStrings) {
  SweepResult sweep;
  sweep.cells.resize(1);
  sweep.cells[0].label = "quote\" back\\slash\nnewline";
  sweep.cells[0].runs = 0;
  std::stringstream stream;
  write_sweep_json(stream, sweep, "escapes");
  const SweepJson parsed = read_sweep_json(stream);
  ASSERT_EQ(parsed.cells.size(), 1u);
  EXPECT_EQ(parsed.cells[0].label, "quote\" back\\slash\nnewline");
}

}  // namespace
}  // namespace slpdas::core
