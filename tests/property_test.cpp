// Property-based sweeps (TEST_P over topology x seed): the protocol-level
// invariants the paper's correctness argument rests on, checked across
// many configurations.
//
//  P1. Phase 1 always converges to a complete schedule.
//  P2. The schedule satisfies weak DAS (Definition 3).
//  P3. Every slot is non-colliding (Definition 1).
//  P4. Phase 3 refinement preserves weak DAS and collision-freedom.
//  P5. VerifySchedule BFS and exhaustive engines agree.
//  P6. A counterexample returned by VerifySchedule is a real attacker walk:
//      edges exist, it starts at s0, ends at the source, and respects the
//      B-set constraint at every step.
#include <gtest/gtest.h>

#include "slpdas/verify/das_checker.hpp"
#include "slpdas/verify/safety_period.hpp"
#include "slpdas/verify/verify_schedule.hpp"
#include "test_util.hpp"

namespace slpdas {
namespace {

using test::fast_parameters;
using test::make_protectionless_net;
using test::make_slp_net;
using test::run_setup;

enum class Topo { kGrid5, kGrid7, kGrid9, kLine8, kRing10, kUnitDisk };

wsn::Topology build(Topo kind) {
  switch (kind) {
    case Topo::kGrid5:
      return wsn::make_grid(5);
    case Topo::kGrid7:
      return wsn::make_grid(7);
    case Topo::kGrid9:
      return wsn::make_grid(9);
    case Topo::kLine8:
      return wsn::make_line(8);
    case Topo::kRing10:
      return wsn::make_ring(10);
    case Topo::kUnitDisk:
      return wsn::make_random_unit_disk(
          {.node_count = 40, .area_side = 40.0, .radio_range = 12.0, .seed = 5});
  }
  throw std::logic_error("unknown topology");
}

std::string topo_name(Topo kind) {
  switch (kind) {
    case Topo::kGrid5:
      return "grid5";
    case Topo::kGrid7:
      return "grid7";
    case Topo::kGrid9:
      return "grid9";
    case Topo::kLine8:
      return "line8";
    case Topo::kRing10:
      return "ring10";
    case Topo::kUnitDisk:
      return "unitdisk40";
  }
  return "unknown";
}

using Param = std::tuple<Topo, std::uint64_t>;

class ProtocolPropertySweep : public ::testing::TestWithParam<Param> {
 public:
  [[nodiscard]] static std::string param_name(
      const ::testing::TestParamInfo<Param>& info) {
    return topo_name(std::get<0>(info.param)) + "_seed" +
           std::to_string(std::get<1>(info.param));
  }
};

TEST_P(ProtocolPropertySweep, Phase1ConvergesToWeakDas) {
  const auto [kind, seed] = GetParam();
  auto net = make_protectionless_net(build(kind), fast_parameters(30), seed);
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  ASSERT_TRUE(schedule.complete());  // P1
  const auto weak = verify::check_weak_das(net.topology.graph, schedule,
                                           net.topology.sink);
  EXPECT_TRUE(weak.ok()) << weak.summary();  // P2
  const auto collisions = verify::check_noncolliding(
      net.topology.graph, schedule, net.topology.sink);
  EXPECT_TRUE(collisions.ok()) << collisions.summary();  // P3
}

TEST_P(ProtocolPropertySweep, RefinementPreservesInvariants) {
  const auto [kind, seed] = GetParam();
  auto net = make_slp_net(build(kind), fast_parameters(30), seed);
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  ASSERT_TRUE(schedule.complete());
  const auto weak = verify::check_weak_das(net.topology.graph, schedule,
                                           net.topology.sink);
  EXPECT_TRUE(weak.ok()) << weak.summary();  // P4
  const auto collisions = verify::check_noncolliding(
      net.topology.graph, schedule, net.topology.sink);
  EXPECT_TRUE(collisions.ok()) << collisions.summary();
}

TEST_P(ProtocolPropertySweep, VerifyEnginesAgree) {
  const auto [kind, seed] = GetParam();
  auto net = make_protectionless_net(build(kind), fast_parameters(30), seed);
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  ASSERT_TRUE(schedule.complete());
  const verify::SafetyPeriod safety = verify::compute_safety_period(
      net.topology.graph, net.topology.source, net.topology.sink);
  for (const auto policy :
       {verify::DPolicy::kMinSlot, verify::DPolicy::kAnyHeard}) {
    verify::VerifyAttacker attacker;
    attacker.start = net.topology.sink;
    attacker.policy = policy;
    attacker.messages_per_move = policy == verify::DPolicy::kAnyHeard ? 2 : 1;
    const auto bfs =
        verify::verify_schedule(net.topology.graph, schedule, attacker,
                                safety.periods, net.topology.source);
    const auto dfs = verify::verify_schedule_exhaustive(
        net.topology.graph, schedule, attacker, safety.periods,
        net.topology.source);
    EXPECT_EQ(bfs.slp_aware, dfs.slp_aware)
        << "policy " << verify::to_string(policy);  // P5
    if (!bfs.slp_aware) {
      EXPECT_LE(bfs.period, dfs.period);
    }
  }
}

TEST_P(ProtocolPropertySweep, CounterexamplesAreGenuineWalks) {
  const auto [kind, seed] = GetParam();
  auto net = make_protectionless_net(build(kind), fast_parameters(30), seed);
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  ASSERT_TRUE(schedule.complete());
  verify::VerifyAttacker attacker;
  attacker.start = net.topology.sink;
  const verify::SafetyPeriod safety = verify::compute_safety_period(
      net.topology.graph, net.topology.source, net.topology.sink);
  const auto result =
      verify::verify_schedule(net.topology.graph, schedule, attacker,
                              safety.periods, net.topology.source);
  if (result.slp_aware) {
    EXPECT_TRUE(result.counterexample.empty());
    return;
  }
  const auto& trace = result.counterexample;  // P6
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace.front(), net.topology.sink);
  EXPECT_EQ(trace.back(), net.topology.source);
  EXPECT_LE(result.period, safety.periods);
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    ASSERT_TRUE(net.topology.graph.has_edge(trace[i], trace[i + 1]));
    // With R = 1 and min-slot D, each step must go to THE lowest-slot
    // neighbour of the current location.
    const auto heard = verify::lowest_slot_neighbors(net.topology.graph,
                                                     schedule, trace[i], 1);
    ASSERT_EQ(heard.size(), 1u);
    EXPECT_EQ(trace[i + 1], heard.front()) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolPropertySweep,
    ::testing::Combine(::testing::Values(Topo::kGrid5, Topo::kGrid7,
                                         Topo::kGrid9, Topo::kLine8,
                                         Topo::kRing10, Topo::kUnitDisk),
                       ::testing::Values(1u, 2u, 3u)),
    ProtocolPropertySweep::param_name);

}  // namespace
}  // namespace slpdas
