// Tests for the safety period computation (Definition 4 / Equation 1 /
// Section VI-B).
#include "slpdas/verify/safety_period.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "slpdas/wsn/topology.hpp"

namespace slpdas::verify {
namespace {

TEST(SafetyPeriodTest, PaperGridValues) {
  // 11x11 grid: Delta_ss = 10, C = 11 periods, safety = ceil(1.5*11) = 17.
  const wsn::Topology grid = wsn::make_grid(11);
  const SafetyPeriod safety =
      compute_safety_period(grid.graph, grid.source, grid.sink);
  EXPECT_EQ(safety.source_sink_distance, 10);
  EXPECT_EQ(safety.periods, 17);
}

TEST(SafetyPeriodTest, AllPaperSizes) {
  for (const auto& [side, distance] :
       std::vector<std::pair<int, int>>{{11, 10}, {15, 14}, {21, 20}}) {
    const wsn::Topology grid = wsn::make_grid(side);
    const SafetyPeriod safety =
        compute_safety_period(grid.graph, grid.source, grid.sink);
    EXPECT_EQ(safety.source_sink_distance, distance);
    EXPECT_EQ(safety.periods,
              static_cast<int>(std::ceil(1.5 * (distance + 1))));
  }
}

TEST(SafetyPeriodTest, DurationUsesFrameLength) {
  const wsn::Topology grid = wsn::make_grid(11);
  const SafetyPeriod safety =
      compute_safety_period(grid.graph, grid.source, grid.sink);
  const mac::FrameConfig frame;  // 5.5 s period
  EXPECT_EQ(safety.duration(frame), 17 * sim::from_seconds(5.5));
}

TEST(SafetyPeriodTest, FactorBoundsEnforced) {
  const wsn::Topology grid = wsn::make_grid(3);
  EXPECT_THROW((void)compute_safety_period(grid.graph, grid.source, grid.sink, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)compute_safety_period(grid.graph, grid.source, grid.sink, 2.0),
               std::invalid_argument);
  EXPECT_NO_THROW(
      (void)compute_safety_period(grid.graph, grid.source, grid.sink, 1.01));
  EXPECT_NO_THROW(
      (void)compute_safety_period(grid.graph, grid.source, grid.sink, 1.99));
}

TEST(SafetyPeriodTest, DisconnectedThrows) {
  wsn::Graph graph(2);
  EXPECT_THROW((void)compute_safety_period(graph, 0, 1), std::invalid_argument);
}

TEST(SafetyPeriodTest, FactorScalesPeriods) {
  const wsn::Topology grid = wsn::make_grid(11);
  const auto low =
      compute_safety_period(grid.graph, grid.source, grid.sink, 1.1);
  const auto high =
      compute_safety_period(grid.graph, grid.source, grid.sink, 1.9);
  EXPECT_LT(low.periods, high.periods);
  EXPECT_EQ(low.periods, 13);   // ceil(1.1 * 11) = 13
  EXPECT_EQ(high.periods, 21);  // ceil(1.9 * 11) = 21
}

}  // namespace
}  // namespace slpdas::verify
