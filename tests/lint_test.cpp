// slpdas_lint self-test: every rule must fire on its deliberate-violation
// fixture (tools/slpdas_lint/fixtures/), justified tags must silence
// findings, and the real source tree must be clean. The fixture files are
// never compiled — they exist to prove the lint finds what it claims to.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace {

using slpdas::lint::Finding;
using slpdas::lint::lint_source;
using slpdas::lint::lint_tree;

std::filesystem::path fixture_dir() {
  return std::filesystem::path(SLPDAS_LINT_FIXTURE_DIR);
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return slpdas::lint::lint_file(fixture_dir() / name);
}

int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintFixtureTest, WallClockRuleFiresOnEveryForbiddenCall) {
  const auto findings = lint_fixture("violation_wall_clock.cpp");
  // random_device, system_clock, time(), srand(), rand() — and NOT the
  // tagged steady_clock telemetry site.
  EXPECT_EQ(count_rule(findings, "wall-clock"), 5) << format_text(findings);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "wall-clock") << f.rule << ": " << f.message;
  }
}

TEST(LintFixtureTest, UnorderedIterationFiresOnlyInSerialisationFiles) {
  const auto findings = lint_fixture("violation_unordered.cpp");
  // One range-for, one .begin() loop; the tagged fold is silenced and
  // contains()/count() membership tests never fire.
  EXPECT_EQ(count_rule(findings, "unordered-serialisation"), 2)
      << format_text(findings);
}

TEST(LintFixtureTest, FloatAccumulateFiresWithoutOrderedReductionTag) {
  const auto findings = lint_fixture("violation_accumulate.cpp");
  // 0.0-seeded and double{0}-seeded calls fire; the integer reduction and
  // the tagged call do not.
  EXPECT_EQ(count_rule(findings, "float-accumulate"), 2)
      << format_text(findings);
}

TEST(LintFixtureTest, BareCatchFiresUnlessJustified) {
  const auto findings = lint_fixture("violation_catch.cpp");
  EXPECT_EQ(count_rule(findings, "bare-catch"), 2) << format_text(findings);
}

TEST(LintFixtureTest, PrefixMutationFiresOutsideTheCapturePath) {
  const auto findings = lint_fixture("violation_prefix_mutation.cpp");
  // Assignment, compound assignment, .reset(), pre/post increment and a
  // decrement fire; every read and the tagged mutation stay silent.
  EXPECT_EQ(count_rule(findings, "prefix-mutation"), 6)
      << format_text(findings);
}

TEST(LintRuleTest, PrefixMutationIgnoredInsideCapturePath) {
  // The capture path (phase_prefix.cpp) is the one legitimate writer.
  const auto findings = lint_source(
      "src/core/phase_prefix.cpp",
      "void capture() {\n"
      "  PhasePrefix prefix;\n"
      "  prefix.activation = 5;\n"
      "  prefix.das_hello = make();\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

TEST(LintRuleTest, PrefixReadsAndAccessorCallsDoNotFire) {
  const auto findings = lint_source(
      "src/core/run_batch.cpp",
      "void f(const PhasePrefix& prefix_) {\n"
      "  simulator.run_until(prefix_.activation);\n"
      "  const bool captured = t <= prefix_.safety_end;\n"
      "  auto frame = batch.prefix().das.frame;\n"
      "  use(prefix_.das.period(), prefix_.safety.duration(prefix_.das));\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

TEST(LintRuleTest, TypedCatchDoesNotFire) {
  const auto findings = lint_source(
      "a.cpp", "void f() { try { g(); } catch (const std::exception& e) {} }");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

TEST(LintRuleTest, UnorderedIterationIgnoredOutsideSerialisationFiles) {
  // No serialisation include -> hash-order iteration is allowed (e.g. the
  // DAS slot-assignment scratch sets).
  const auto findings = lint_source(
      "das.cpp",
      "#include <unordered_set>\n"
      "int f(const std::unordered_set<int>& taken) {\n"
      "  int sum = 0;\n"
      "  for (int slot : taken) sum += slot;\n"
      "  return sum;\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

TEST(LintRuleTest, CommentsAndStringsNeverFire) {
  const auto findings = lint_source(
      "doc.cpp",
      "// the wall clock, rand() and time() are discussed here only\n"
      "/* std::random_device in a block comment */\n"
      "const char* kMessage = \"do not call rand() or time(nullptr)\";\n"
      "const char* kRaw = R\"(system_clock)\";\n");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

TEST(LintRuleTest, IdentifierBoundariesRespected) {
  // capture_time(...), next_time(), SimTime, clock-ish member names: none
  // of these are the forbidden calls.
  const auto findings = lint_source(
      "sim.cpp",
      "SimTime t = capture_time(x);\n"
      "auto n = queue.next_time();\n"
      "double wall_clock_seconds = 0.0;\n");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

TEST(LintRuleTest, AllowTagWithoutReasonIsItselfAFinding) {
  const auto findings = lint_source(
      "a.cpp",
      "// slpdas-lint: allow(wall-clock)\n"
      "auto t = std::chrono::steady_clock::now();\n");
  // The bare tag is malformed AND does not silence the wall-clock hit.
  EXPECT_EQ(count_rule(findings, "bad-tag"), 1) << format_text(findings);
  EXPECT_EQ(count_rule(findings, "wall-clock"), 1) << format_text(findings);
}

TEST(LintRuleTest, SameLineTagSilences) {
  const auto findings = lint_source(
      "a.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// slpdas-lint: allow(wall-clock): perf telemetry only\n");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

TEST(LintFormatTest, JsonFindingsAreOnePerLineWithStableKeys) {
  const auto findings = lint_source("a.cpp", "int f() { return rand(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = slpdas::lint::format_json(findings);
  EXPECT_NE(json.find("\"file\": \"a.cpp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"wall-clock\""), std::string::npos) << json;
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 1) << json;
}

TEST(LintTreeTest, RealSourceTreeIsClean) {
  // The same invariant the slpdas_lint_tree CTest and the CI step gate
  // on, asserted here with per-finding diagnostics.
  const std::filesystem::path root(SLPDAS_SOURCE_ROOT);
  for (const char* dir : {"src", "include", "bench", "examples", "tools"}) {
    const auto findings = lint_tree(root / dir);
    EXPECT_TRUE(findings.empty())
        << dir << " has findings:\n"
        << format_text(findings);
  }
}

TEST(LintTreeTest, FixtureDirectoriesAreSkipped) {
  // lint_tree over tools/ must NOT surface the deliberate violations.
  const auto findings =
      lint_tree(std::filesystem::path(SLPDAS_SOURCE_ROOT) / "tools");
  EXPECT_TRUE(findings.empty()) << format_text(findings);
}

}  // namespace
