// Shutdown-ordering contracts, exercised wide enough for TSan to check
// the teardown paths: the ThreadPool destructor racing queued and
// in-flight jobs, and run_sweep unwinding through its typed worker
// exception boundary while other cells are still computing — the pool
// must drain, completed cells must remain recorded, and the failing
// cell must be named in the rethrown error.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "slpdas/core/cell_cache.hpp"
#include "slpdas/core/sweep.hpp"
#include "slpdas/core/thread_pool.hpp"
#include "test_util.hpp"

namespace slpdas::core {
namespace {

TEST(ThreadPoolShutdownTest, DestructorDrainsQueuedJobs) {
  // The destructor's contract is drain-then-join, not abandon: every job
  // submitted before destruction runs exactly once, even the ones still
  // queued when the destructor fires.
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 256; ++i) {
      pool.submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle: destruction races the queue on purpose.
  }
  EXPECT_EQ(executed.load(), 256);
}

TEST(ThreadPoolShutdownTest, DestructorWaitsForInFlightJobs) {
  std::atomic<int> completed{0};
  std::atomic<bool> destroyed_early{false};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&completed, &destroyed_early] {
        // Long enough that the destructor certainly starts while these
        // are in flight; the flag would be visible if it returned early.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (destroyed_early.load()) {
          ADD_FAILURE() << "pool destructor returned with jobs in flight";
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  destroyed_early.store(true);
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolShutdownTest, SubmitAfterWaitIdleStillRuns) {
  // wait_idle is a fence, not a shutdown: the pool must accept and run
  // further work afterwards, repeatedly.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  for (int round = 0; round < 8; ++round) {
    pool.submit([&executed] { executed.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(executed.load(), round + 1);
  }
}

/// A sweep where one labelled cell fails at topology-build time (width 0
/// bypasses the factory validation and throws inside the worker) while
/// the other cells are real, cheap experiments.
std::vector<SweepCell> cells_with_one_poisoned(int good_cells) {
  ExperimentConfig base;
  base.topology = wsn::TopologySpec::grid(5);
  base.parameters = test::fast_parameters(24);
  base.radio = RadioKind::kCasinoLab;
  base.runs = 2;
  base.check_schedules = false;
  SweepGrid grid(base);
  std::vector<SweepGrid::AxisValue> values;
  for (int i = 0; i < good_cells; ++i) {
    values.push_back({"good" + std::to_string(i), [](ExperimentConfig&) {}});
  }
  values.push_back({"poisoned", [](ExperimentConfig& config) {
                      wsn::TopologySpec bad;
                      bad.kind = wsn::TopologySpec::Kind::kGrid;
                      bad.width = 0;
                      bad.height = 0;
                      config.topology = bad;
                    }});
  grid.axis("cell", std::move(values));
  return grid.expand();
}

TEST(SweepShutdownTest, MidSliceExceptionNamesTheFailingCell) {
  const auto cells = cells_with_one_poisoned(/*good_cells=*/6);
  SweepOptions options;
  options.threads = 4;
  options.base_seed = 3;
  options.deterministic_timing = true;
  try {
    (void)run_sweep(cells, options);
    FAIL() << "poisoned cell did not fail the sweep";
  } catch (const std::runtime_error& error) {
    // The typed worker boundary must name the cell, not just forward
    // make_grid's message.
    EXPECT_NE(std::string(error.what()).find("cell=poisoned"),
              std::string::npos)
        << error.what();
  }
}

TEST(SweepShutdownTest, CompletedCellsAreRecordedBeforeUnwinding) {
  const auto cells = cells_with_one_poisoned(/*good_cells=*/6);
  const std::string dir = testing::TempDir() + "/slpdas_shutdown_cache";
  std::filesystem::remove_all(dir);
  CellCache cache(dir);

  std::ostringstream stream;
  CellStreamHeader header;
  header.name = "shutdown";
  header.base_seed = 3;
  header.grid_hash = hash_sweep_grid(cells);
  header.cells_total = cells.size();
  header.deterministic = true;
  header.threads = 4;
  write_cell_stream_header(stream, header);

  SweepOptions options;
  options.threads = 4;
  options.base_seed = 3;
  options.deterministic_timing = true;
  options.stream = &stream;
  options.cache = &cache;
  EXPECT_THROW((void)run_sweep(cells, options), std::runtime_error);

  // The stream holds the header plus one whole record per cell that
  // completed before the unwind — and never one for the poisoned cell,
  // which a resume must re-run (here: re-fail).
  std::istringstream reread(stream.str());
  const CellStream recorded = read_cell_stream(reread);
  EXPECT_LT(recorded.cells.size(), cells.size());
  for (const SweepJsonCell& cell : recorded.cells) {
    EXPECT_EQ(cell.label.find("poisoned"), std::string::npos) << cell.label;
  }
  // Same for the cache: completed cells stored, the failed one absent.
  EXPECT_EQ(cache.stats().stores, recorded.cells.size());
  std::filesystem::remove_all(dir);
}

TEST(SweepShutdownTest, UnbatchedTypedPathReportsTheSameError) {
  const auto cells = cells_with_one_poisoned(/*good_cells=*/2);
  SweepOptions options;
  options.threads = 4;
  options.base_seed = 3;
  options.deterministic_timing = true;
  options.unbatched = true;
  try {
    (void)run_sweep(cells, options);
    FAIL() << "poisoned cell did not fail the unbatched sweep";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("cell=poisoned"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace slpdas::core
