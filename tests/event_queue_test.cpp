// Tests for the deterministic typed event queue: time ordering plus FIFO
// tie-breaking across all three event kinds (the property that makes runs
// reproducible), shared-message staging/release, and the simulator-level
// cancelled-timer skip at pop time.
#include "slpdas/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "slpdas/sim/simulator.hpp"
#include "slpdas/wsn/topology.hpp"

namespace slpdas::sim {
namespace {

struct TestMessage final : Message {
  [[nodiscard]] const char* name() const noexcept override { return "TEST"; }
};

/// Pops every event, returning kinds in pop order and releasing whatever
/// resources the events hold.
std::vector<EventKind> drain(EventQueue& queue, SimTime& now) {
  std::vector<EventKind> kinds;
  while (!queue.empty()) {
    const Event event = queue.pop(now);
    kinds.push_back(event.kind());
    switch (event.kind()) {
      case EventKind::kDelivery:
        queue.release_message(event.delivery.message_slot);
        break;
      case EventKind::kControl:
        queue.take_control(event.control.callback_slot)();
        break;
      case EventKind::kTimer:
        break;
    }
  }
  return kinds;
}

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.staged_message_count(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push_control(30, [&] { order.push_back(3); });
  queue.push_control(10, [&] { order.push_back(1); });
  queue.push_control(20, [&] { order.push_back(2); });
  SimTime now = 0;
  drain(queue, now);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, 30);
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    queue.push_control(5, [&order, i] { order.push_back(i); });
  }
  SimTime now = 0;
  drain(queue, now);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, EqualTimesTieBreakAcrossKindsByInsertionOrder) {
  // A delivery, a timer and a control pushed at one timestamp pop in push
  // order — the cross-kind FIFO guarantee the protocol stack relies on
  // (e.g. a reception and a period-boundary timer landing on the same
  // microsecond must not reorder between runs or refactors).
  EventQueue queue;
  const std::uint32_t slot = queue.stage_message(std::make_shared<TestMessage>());
  queue.push_delivery(7, /*from=*/0, /*to=*/1, slot);
  queue.push_timer(7, /*node=*/1, /*timer_id=*/4, /*generation=*/1);
  queue.push_control(7, [] {});
  queue.push_delivery(7, /*from=*/0, /*to=*/2, slot);
  queue.push_timer(7, /*node=*/2, /*timer_id=*/4, /*generation=*/1);

  SimTime now = 0;
  const std::vector<EventKind> kinds = drain(queue, now);
  EXPECT_EQ(kinds,
            (std::vector<EventKind>{EventKind::kDelivery, EventKind::kTimer,
                                    EventKind::kControl, EventKind::kDelivery,
                                    EventKind::kTimer}));
  EXPECT_EQ(now, 7);
  EXPECT_EQ(queue.staged_message_count(), 0u);
}

TEST(EventQueueTest, DeliveriesShareOneStagedMessage) {
  EventQueue queue;
  auto message = std::make_shared<TestMessage>();
  const std::uint32_t slot = queue.stage_message(message);
  queue.push_delivery(1, 0, 1, slot);
  queue.push_delivery(1, 0, 2, slot);
  queue.push_delivery(1, 0, 3, slot);
  // One reference in the slot table plus the test's own handle: pushing
  // three deliveries copies nothing.
  EXPECT_EQ(message.use_count(), 2);
  EXPECT_EQ(queue.staged_message_count(), 1u);

  SimTime now = 0;
  int popped = 0;
  while (!queue.empty()) {
    const Event event = queue.pop(now);
    ASSERT_EQ(event.kind(), EventKind::kDelivery);
    EXPECT_EQ(&queue.message(event.delivery.message_slot), message.get());
    queue.release_message(event.delivery.message_slot);
    ++popped;
  }
  EXPECT_EQ(popped, 3);
  // The last release freed the slot.
  EXPECT_EQ(queue.staged_message_count(), 0u);
  EXPECT_EQ(message.use_count(), 1);
}

TEST(EventQueueTest, NextTimeReportsHead) {
  EventQueue queue;
  queue.push_timer(42, 0, 1, 1);
  queue.push_timer(7, 0, 2, 1);
  EXPECT_EQ(queue.next_time(), 7);
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push_control(10, [&] { order.push_back(1); });
  SimTime now = 0;
  queue.take_control(queue.pop(now).control.callback_slot)();
  queue.push_control(5, [&] { order.push_back(2); });   // earlier absolute time,
  queue.push_control(20, [&] { order.push_back(3); });  // pushed later
  drain(queue, now);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ClearReleasesMessageReferencesAndCallbacks) {
  EventQueue queue;
  auto message = std::make_shared<TestMessage>();
  const std::uint32_t slot = queue.stage_message(message);
  queue.push_delivery(1, 0, 1, slot);
  queue.push_delivery(2, 0, 2, slot);
  auto witness = std::make_shared<int>(0);
  queue.push_control(3, [witness] { ++*witness; });
  queue.push_timer(4, 0, 1, 1);
  // Staged but never pushed: clear() must free this one too.
  auto orphan = std::make_shared<TestMessage>();
  (void)queue.stage_message(orphan);
  EXPECT_EQ(message.use_count(), 2);
  EXPECT_EQ(witness.use_count(), 2);
  EXPECT_EQ(orphan.use_count(), 2);

  queue.clear();
  EXPECT_TRUE(queue.empty());
  // The staged payloads and the captured callback state were all released:
  // nothing but the test's own handles survive.
  EXPECT_EQ(queue.staged_message_count(), 0u);
  EXPECT_EQ(message.use_count(), 1);
  EXPECT_EQ(witness.use_count(), 1);
  EXPECT_EQ(orphan.use_count(), 1);
}

TEST(EventQueueTest, RejectsNullMessageAndNullAction) {
  EventQueue queue;
  EXPECT_THROW((void)queue.stage_message(nullptr), std::invalid_argument);
  EXPECT_THROW(queue.push_control(1, nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cancelled-timer skip at pop (simulator-level: the generation table lives
// in the Simulator, the queue only transports the arming generation).
// ---------------------------------------------------------------------------

class CancelHalfProcess final : public Process {
 public:
  void on_start() override {
    set_timer(1, kSecond);
    set_timer(2, kSecond);
    cancel_timer(2);  // its queued expiry must be skipped at pop time
  }
  void on_timer(int timer_id) override { fired.push_back(timer_id); }
  void on_message(wsn::NodeId, const Message&) override {}

  std::vector<int> fired;
};

TEST(EventQueueSimulatorTest, CancelledTimerIsSkippedAtPopButStillPops) {
  const wsn::Topology line = wsn::make_line(2);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<CancelHalfProcess>());
  simulator.add_process(1, std::make_unique<CancelHalfProcess>());
  simulator.run_until(10 * kSecond);
  for (wsn::NodeId n = 0; n < 2; ++n) {
    const auto& process =
        dynamic_cast<const CancelHalfProcess&>(simulator.process(n));
    EXPECT_EQ(process.fired, std::vector<int>{1});
  }
  // Both armed expiries popped (the cancelled one as a skipped no-op, so
  // event accounting is invariant under cancellation), but only the live
  // ones fired.
  EXPECT_EQ(simulator.events_executed(), 4u);
  EXPECT_EQ(simulator.timers_fired(), 2u);
}

}  // namespace
}  // namespace slpdas::sim
