// Tests for the deterministic event queue: time ordering plus FIFO
// tie-breaking, the property that makes runs reproducible.
#include "slpdas/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slpdas::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(30, [&] { order.push_back(3); });
  queue.push(10, [&] { order.push_back(1); });
  queue.push(20, [&] { order.push_back(2); });
  SimTime now = 0;
  while (!queue.empty()) {
    auto action = queue.pop(now);
    action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, 30);
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    queue.push(5, [&order, i] { order.push_back(i); });
  }
  SimTime now = 0;
  while (!queue.empty()) {
    queue.pop(now)();
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, NextTimeReportsHead) {
  EventQueue queue;
  queue.push(42, [] {});
  queue.push(7, [] {});
  EXPECT_EQ(queue.next_time(), 7);
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(10, [&] { order.push_back(1); });
  SimTime now = 0;
  queue.pop(now)();
  queue.push(5, [&] { order.push_back(2); });   // earlier absolute time,
  queue.push(20, [&] { order.push_back(3); });  // pushed later
  while (!queue.empty()) {
    queue.pop(now)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue queue;
  queue.push(1, [] {});
  queue.push(2, [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace slpdas::sim
