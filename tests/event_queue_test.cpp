// Tests for the deterministic typed event queue: time ordering plus FIFO
// tie-breaking across all three event kinds (the property that makes runs
// reproducible), shared-message staging/release, the calendar backend's
// equivalence to the forced heap (including its deterministic degradation
// on pathological horizons), and the simulator-level cancelled-timer skip
// at pop time.
#include "slpdas/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "slpdas/rng.hpp"
#include "slpdas/sim/simulator.hpp"
#include "slpdas/wsn/topology.hpp"

namespace slpdas::sim {
namespace {

struct TestMessage final : Message {
  [[nodiscard]] const char* name() const noexcept override { return "TEST"; }
};

/// Pops every event, returning kinds in pop order and releasing whatever
/// resources the events hold.
std::vector<EventKind> drain(EventQueue& queue, SimTime& now) {
  std::vector<EventKind> kinds;
  while (!queue.empty()) {
    const Event event = queue.pop(now);
    kinds.push_back(event.kind());
    switch (event.kind()) {
      case EventKind::kDelivery:
        queue.release_message(event.delivery.message_slot);
        break;
      case EventKind::kControl:
        queue.take_control(event.control.callback_slot)();
        break;
      case EventKind::kTimer:
        break;
    }
  }
  return kinds;
}

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.staged_message_count(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push_control(30, [&] { order.push_back(3); });
  queue.push_control(10, [&] { order.push_back(1); });
  queue.push_control(20, [&] { order.push_back(2); });
  SimTime now = 0;
  drain(queue, now);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, 30);
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    queue.push_control(5, [&order, i] { order.push_back(i); });
  }
  SimTime now = 0;
  drain(queue, now);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, EqualTimesTieBreakAcrossKindsByInsertionOrder) {
  // A delivery, a timer and a control pushed at one timestamp pop in push
  // order — the cross-kind FIFO guarantee the protocol stack relies on
  // (e.g. a reception and a period-boundary timer landing on the same
  // microsecond must not reorder between runs or refactors).
  EventQueue queue;
  const std::uint32_t slot = queue.stage_message(std::make_shared<TestMessage>());
  queue.push_delivery(7, /*from=*/0, /*to=*/1, slot);
  queue.push_timer(7, /*node=*/1, /*timer_id=*/4, /*generation=*/1);
  queue.push_control(7, [] {});
  queue.push_delivery(7, /*from=*/0, /*to=*/2, slot);
  queue.push_timer(7, /*node=*/2, /*timer_id=*/4, /*generation=*/1);

  SimTime now = 0;
  const std::vector<EventKind> kinds = drain(queue, now);
  EXPECT_EQ(kinds,
            (std::vector<EventKind>{EventKind::kDelivery, EventKind::kTimer,
                                    EventKind::kControl, EventKind::kDelivery,
                                    EventKind::kTimer}));
  EXPECT_EQ(now, 7);
  EXPECT_EQ(queue.staged_message_count(), 0u);
}

TEST(EventQueueTest, DeliveriesShareOneStagedMessage) {
  EventQueue queue;
  auto message = std::make_shared<TestMessage>();
  const std::uint32_t slot = queue.stage_message(message);
  queue.push_delivery(1, 0, 1, slot);
  queue.push_delivery(1, 0, 2, slot);
  queue.push_delivery(1, 0, 3, slot);
  // One reference in the slot table plus the test's own handle: pushing
  // three deliveries copies nothing.
  EXPECT_EQ(message.use_count(), 2);
  EXPECT_EQ(queue.staged_message_count(), 1u);

  SimTime now = 0;
  int popped = 0;
  while (!queue.empty()) {
    const Event event = queue.pop(now);
    ASSERT_EQ(event.kind(), EventKind::kDelivery);
    EXPECT_EQ(&queue.message(event.delivery.message_slot), message.get());
    queue.release_message(event.delivery.message_slot);
    ++popped;
  }
  EXPECT_EQ(popped, 3);
  // The last release freed the slot.
  EXPECT_EQ(queue.staged_message_count(), 0u);
  EXPECT_EQ(message.use_count(), 1);
}

TEST(EventQueueTest, NextTimeReportsHead) {
  EventQueue queue;
  queue.push_timer(42, 0, 1, 1);
  queue.push_timer(7, 0, 2, 1);
  EXPECT_EQ(queue.next_time(), 7);
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push_control(10, [&] { order.push_back(1); });
  SimTime now = 0;
  queue.take_control(queue.pop(now).control.callback_slot)();
  queue.push_control(5, [&] { order.push_back(2); });   // earlier absolute time,
  queue.push_control(20, [&] { order.push_back(3); });  // pushed later
  drain(queue, now);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ClearReleasesMessageReferencesAndCallbacks) {
  EventQueue queue;
  auto message = std::make_shared<TestMessage>();
  const std::uint32_t slot = queue.stage_message(message);
  queue.push_delivery(1, 0, 1, slot);
  queue.push_delivery(2, 0, 2, slot);
  auto witness = std::make_shared<int>(0);
  queue.push_control(3, [witness] { ++*witness; });
  queue.push_timer(4, 0, 1, 1);
  // Staged but never pushed: clear() must free this one too.
  auto orphan = std::make_shared<TestMessage>();
  (void)queue.stage_message(orphan);
  EXPECT_EQ(message.use_count(), 2);
  EXPECT_EQ(witness.use_count(), 2);
  EXPECT_EQ(orphan.use_count(), 2);

  queue.clear();
  EXPECT_TRUE(queue.empty());
  // The staged payloads and the captured callback state were all released:
  // nothing but the test's own handles survive.
  EXPECT_EQ(queue.staged_message_count(), 0u);
  EXPECT_EQ(message.use_count(), 1);
  EXPECT_EQ(witness.use_count(), 1);
  EXPECT_EQ(orphan.use_count(), 1);
}

TEST(EventQueueTest, RejectsNullMessageAndNullAction) {
  EventQueue queue;
  EXPECT_THROW((void)queue.stage_message(nullptr), std::invalid_argument);
  EXPECT_THROW(queue.push_control(1, nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Calendar backend: equivalence to the forced heap, and the deterministic
// degradation triggers.
// ---------------------------------------------------------------------------

/// Pops every event of a timer-only queue, recording (timestamp, sequence).
std::vector<std::pair<SimTime, std::uint64_t>> drain_keys(EventQueue& queue) {
  std::vector<std::pair<SimTime, std::uint64_t>> keys;
  SimTime now = 0;
  while (!queue.empty()) {
    const Event event = queue.pop(now);
    keys.emplace_back(event.at, event.sequence());
  }
  return keys;
}

TEST(EventQueueBackendTest, ForcedHeapBackendIsConstructible) {
  EventQueue queue(EventQueue::Backend::kHeap);
  EXPECT_EQ(queue.backend(), EventQueue::Backend::kHeap);
  queue.push_timer(20, 0, 1, 1);
  queue.push_timer(10, 0, 1, 2);
  SimTime now = 0;
  EXPECT_EQ(queue.pop(now).at, 10);
  EXPECT_EQ(queue.pop(now).at, 20);
  EXPECT_EQ(now, 20);
}

TEST(EventQueueBackendTest, CalendarMatchesHeapOnMixedHorizonWorkload) {
  // The same randomised push/pop interleaving — propagation-scale pushes,
  // dissemination bursts, far-horizon tails, duplicate timestamps — must
  // pop in the identical (timestamp, sequence) order on both backends.
  // Sequence numbers advance identically on every push flavour, so equal
  // key streams mean bit-identical simulations.
  EventQueue calendar(EventQueue::Backend::kCalendar);
  EventQueue heap(EventQueue::Backend::kHeap);
  Rng rng(2024);
  SimTime calendar_now = 0;
  SimTime heap_now = 0;
  std::vector<std::pair<SimTime, std::uint64_t>> calendar_keys;
  std::vector<std::pair<SimTime, std::uint64_t>> heap_keys;
  SimTime now = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t action = rng.uniform(100);
    if (action < 60 || calendar.empty()) {
      SimTime delay;
      const std::uint64_t band = rng.uniform(100);
      if (band < 80) {
        delay = static_cast<SimTime>(rng.uniform(50'000));  // slot scale
      } else if (band < 95) {
        delay = static_cast<SimTime>(rng.uniform(1'000'000));  // dissem
      } else {
        delay = static_cast<SimTime>(rng.uniform(20'000'000));  // far tail
      }
      const auto node = static_cast<wsn::NodeId>(rng.uniform(64));
      calendar.push_timer(now + delay, node, 1, 0);
      heap.push_timer(now + delay, node, 1, 0);
    } else {
      const Event from_calendar = calendar.pop(calendar_now);
      const Event from_heap = heap.pop(heap_now);
      calendar_keys.emplace_back(from_calendar.at, from_calendar.sequence());
      heap_keys.emplace_back(from_heap.at, from_heap.sequence());
      now = calendar_now;
    }
  }
  const auto calendar_tail = drain_keys(calendar);
  const auto heap_tail = drain_keys(heap);
  calendar_keys.insert(calendar_keys.end(), calendar_tail.begin(),
                       calendar_tail.end());
  heap_keys.insert(heap_keys.end(), heap_tail.begin(), heap_tail.end());
  ASSERT_EQ(calendar_keys.size(), heap_keys.size());
  EXPECT_EQ(calendar_keys, heap_keys);
  // This workload is calendar-friendly: no degradation.
  EXPECT_EQ(calendar.backend(), EventQueue::Backend::kCalendar);
}

TEST(EventQueueBackendTest, DegradesToHeapOnPathologicalFarHorizon) {
  // Thousands of events, each a calendar revolution apart: every refill
  // re-anchors and re-partitions the whole far overflow to surface ONE
  // event. The far-scan accounting must notice and migrate to the heap —
  // and the pop order must be unaffected.
  constexpr int kEvents = 4000;
  constexpr SimTime kStride =
      (static_cast<SimTime>(EventQueue::kNumBuckets) + 7)
      << EventQueue::kBucketShift;
  EventQueue calendar;
  EventQueue heap(EventQueue::Backend::kHeap);
  for (int i = 0; i < kEvents; ++i) {
    // Ascending, so all but the anchor land in the far overflow and every
    // pop's refill re-partitions the remaining far events.
    const SimTime at = static_cast<SimTime>(i + 1) * kStride;
    calendar.push_timer(at, 0, 1, 0);
    heap.push_timer(at, 0, 1, 0);
  }
  EXPECT_EQ(calendar.backend(), EventQueue::Backend::kCalendar);
  const auto calendar_keys = drain_keys(calendar);
  EXPECT_EQ(calendar.backend(), EventQueue::Backend::kHeap)
      << "far-horizon workload should have degraded the calendar";
  EXPECT_EQ(calendar_keys, drain_keys(heap));
}

TEST(EventQueueBackendTest, DegradesToHeapOnOvercrowdedSortedWindow) {
  // Descending timestamps inside one bucket: every push inserts at the
  // window's front, shifting the whole tail. Once the cumulative shift
  // cost dwarfs the push count the queue must switch to the heap rather
  // than go quadratic — again without reordering anything.
  constexpr int kEvents = 3000;
  EventQueue calendar;
  EventQueue heap(EventQueue::Backend::kHeap);
  for (int i = 0; i < kEvents; ++i) {
    const SimTime at = static_cast<SimTime>(kEvents - i);
    calendar.push_timer(at, 0, 1, 0);
    heap.push_timer(at, 0, 1, 0);
  }
  EXPECT_EQ(calendar.backend(), EventQueue::Backend::kHeap)
      << "descending same-bucket pushes should have degraded the calendar";
  EXPECT_EQ(drain_keys(calendar), drain_keys(heap));
}

TEST(EventQueueBackendTest, ReserveKeepsOrderAndSize) {
  EventQueue queue;
  queue.push_timer(30, 0, 1, 1);
  queue.push_timer(10, 0, 1, 2);
  queue.reserve(4096, 64);
  queue.push_timer(20, 0, 1, 3);
  EXPECT_EQ(queue.size(), 3u);
  SimTime now = 0;
  EXPECT_EQ(queue.pop(now).at, 10);
  EXPECT_EQ(queue.pop(now).at, 20);
  EXPECT_EQ(queue.pop(now).at, 30);
}

// ---------------------------------------------------------------------------
// Cancelled-timer skip at pop (simulator-level: the generation table lives
// in the Simulator, the queue only transports the arming generation).
// ---------------------------------------------------------------------------

class CancelHalfProcess final : public Process {
 public:
  void on_start() override {
    set_timer(1, kSecond);
    set_timer(2, kSecond);
    cancel_timer(2);  // its queued expiry must be skipped at pop time
  }
  void on_timer(int timer_id) override { fired.push_back(timer_id); }
  void on_message(wsn::NodeId, const Message&) override {}

  std::vector<int> fired;
};

TEST(EventQueueSimulatorTest, CancelledTimerIsSkippedAtPopButStillPops) {
  const wsn::Topology line = wsn::make_line(2);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<CancelHalfProcess>());
  simulator.add_process(1, std::make_unique<CancelHalfProcess>());
  simulator.run_until(10 * kSecond);
  for (wsn::NodeId n = 0; n < 2; ++n) {
    const auto& process =
        dynamic_cast<const CancelHalfProcess&>(simulator.process(n));
    EXPECT_EQ(process.fired, std::vector<int>{1});
  }
  // Both armed expiries popped (the cancelled one as a skipped no-op, so
  // event accounting is invariant under cancellation), but only the live
  // ones fired.
  EXPECT_EQ(simulator.events_executed(), 4u);
  EXPECT_EQ(simulator.timers_fired(), 2u);
}

}  // namespace
}  // namespace slpdas::sim
