// Tests for the bottom-up first-fit DAS scheduler: validity (weak DAS,
// non-colliding), compactness relative to the paper's top-down
// construction, and determinism.
#include "slpdas/das/first_fit.hpp"

#include <gtest/gtest.h>

#include "slpdas/das/centralized.hpp"
#include "slpdas/mac/schedule_io.hpp"
#include "slpdas/verify/das_checker.hpp"
#include "slpdas/wsn/paths.hpp"
#include "slpdas/wsn/topology.hpp"

namespace slpdas::das {
namespace {

TEST(FirstFitDasTest, CompleteAndStartsAtSlotOne) {
  const wsn::Topology grid = wsn::make_grid(7);
  const auto result = build_first_fit_das(grid.graph, grid.sink);
  EXPECT_TRUE(result.schedule.complete());
  EXPECT_EQ(result.schedule.min_slot(), 1);
}

TEST(FirstFitDasTest, ParentsFireAfterChildren) {
  const wsn::Topology grid = wsn::make_grid(7);
  const auto result = build_first_fit_das(grid.graph, grid.sink);
  for (wsn::NodeId node = 0; node < grid.graph.node_count(); ++node) {
    const wsn::NodeId parent = result.parent[static_cast<std::size_t>(node)];
    if (parent == wsn::kNoNode) {
      EXPECT_EQ(node, grid.sink);
      continue;
    }
    EXPECT_LT(result.schedule.slot(node), result.schedule.slot(parent));
  }
}

TEST(FirstFitDasTest, SinkHoldsTheLatestSlot) {
  const wsn::Topology grid = wsn::make_grid(9);
  const auto result = build_first_fit_das(grid.graph, grid.sink);
  EXPECT_EQ(result.sink_slot, result.schedule.slot(grid.sink));
  EXPECT_EQ(result.schedule.max_slot(), result.sink_slot);
}

TEST(FirstFitDasTest, MoreCompactThanTopDown) {
  // The whole point of the baseline: it uses a much narrower slot band
  // than the paper's Delta-anchored construction on the same topology.
  const wsn::Topology grid = wsn::make_grid(11);
  const auto first_fit = build_first_fit_das(grid.graph, grid.sink);
  const auto top_down = build_centralized_das(grid.graph, grid.sink, 100);
  const auto ff_stats = mac::compute_stats(first_fit.schedule);
  const auto td_stats = mac::compute_stats(top_down.schedule);
  EXPECT_LT(ff_stats.max_slot, 100);
  EXPECT_GT(ff_stats.density, td_stats.density);
}

TEST(FirstFitDasTest, DeterministicConstruction) {
  const wsn::Topology grid = wsn::make_grid(5);
  EXPECT_EQ(build_first_fit_das(grid.graph, grid.sink).schedule,
            build_first_fit_das(grid.graph, grid.sink).schedule);
}

TEST(FirstFitDasTest, ErrorsOnBadInput) {
  const wsn::Topology grid = wsn::make_grid(3);
  EXPECT_THROW((void)build_first_fit_das(grid.graph, 99), std::out_of_range);
  wsn::Graph disconnected(3);
  disconnected.add_edge(0, 1);
  EXPECT_THROW((void)build_first_fit_das(disconnected, 0),
               std::invalid_argument);
}

class FirstFitSweep : public ::testing::TestWithParam<wsn::Topology> {};

TEST_P(FirstFitSweep, ProducesWeakNonCollidingDas) {
  const wsn::Topology& topology = GetParam();
  const auto result = build_first_fit_das(topology.graph, topology.sink);
  EXPECT_TRUE(result.schedule.complete());
  const auto weak =
      verify::check_weak_das(topology.graph, result.schedule, topology.sink);
  EXPECT_TRUE(weak.ok()) << weak.summary();
  const auto collisions = verify::check_noncolliding(
      topology.graph, result.schedule, topology.sink);
  EXPECT_TRUE(collisions.ok()) << collisions.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, FirstFitSweep,
    ::testing::Values(wsn::make_grid(3), wsn::make_grid(7), wsn::make_grid(11),
                      wsn::make_grid(15), wsn::make_line(2), wsn::make_line(9),
                      wsn::make_ring(12),
                      wsn::make_random_unit_disk({.node_count = 60,
                                                  .area_side = 55.0,
                                                  .radio_range = 12.0,
                                                  .seed = 9})),
    [](const ::testing::TestParamInfo<wsn::Topology>& info) {
      return "t" + std::to_string(info.index) + "_n" +
             std::to_string(info.param.graph.node_count());
    });

}  // namespace
}  // namespace slpdas::das
