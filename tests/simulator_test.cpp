// Tests for the discrete-event simulator: process lifecycle, broadcast
// delivery, timers (re-arm/cancel), observers, traffic accounting and
// determinism.
#include "slpdas/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "slpdas/wsn/topology.hpp"

namespace slpdas::sim {
namespace {

struct PingMessage final : Message {
  int payload = 0;
  [[nodiscard]] const char* name() const noexcept override { return "PING"; }
};

/// Re-broadcasts any received ping with a decremented TTL.
class RelayProcess final : public Process {
 public:
  void on_start() override {
    if (id() == 0) {
      set_timer(1, kSecond);
    }
  }
  void on_timer(int timer_id) override {
    if (timer_id == 1) {
      auto message = std::make_shared<PingMessage>();
      message->payload = 3;
      broadcast(std::move(message));
    }
  }
  void on_message(wsn::NodeId from, const Message& message) override {
    last_sender = from;
    const auto& ping = dynamic_cast<const PingMessage&>(message);
    received.push_back(ping.payload);
    if (ping.payload > 0) {
      auto reply = std::make_shared<PingMessage>();
      reply->payload = ping.payload - 1;
      broadcast(std::move(reply));
    }
  }

  std::vector<int> received;
  wsn::NodeId last_sender = wsn::kNoNode;
};

class SimulatorTest : public ::testing::Test {
 protected:
  wsn::Topology topology_ = wsn::make_line(3);
};

TEST_F(SimulatorTest, BroadcastReachesOnlyNeighbors) {
  Simulator simulator(topology_.graph, make_ideal_radio(), 1);
  for (wsn::NodeId n = 0; n < 3; ++n) {
    simulator.add_process(n, std::make_unique<RelayProcess>());
  }
  simulator.run_until(2 * kSecond);
  auto& p0 = dynamic_cast<RelayProcess&>(simulator.process(0));
  auto& p1 = dynamic_cast<RelayProcess&>(simulator.process(1));
  auto& p2 = dynamic_cast<RelayProcess&>(simulator.process(2));
  // 0 pings (ttl 3); 1 hears it (not 2), relays (ttl 2); both 0 and 2 hear;
  // the cascade decays to ttl 0.
  ASSERT_FALSE(p1.received.empty());
  EXPECT_EQ(p1.received.front(), 3);
  ASSERT_FALSE(p2.received.empty());
  EXPECT_EQ(p2.received.front(), 2);
  EXPECT_FALSE(p0.received.empty());  // heard the relay back
}

TEST_F(SimulatorTest, PropagationDelayAppliesToDeliveries) {
  Simulator simulator(topology_.graph, make_ideal_radio(), 1);
  simulator.set_propagation_delay(5 * kMillisecond);
  for (wsn::NodeId n = 0; n < 3; ++n) {
    simulator.add_process(n, std::make_unique<RelayProcess>());
  }
  // Stop exactly when the first broadcast has been sent but not delivered.
  simulator.run_until(kSecond + 4 * kMillisecond);
  auto& p1 = dynamic_cast<RelayProcess&>(simulator.process(1));
  EXPECT_TRUE(p1.received.empty());
  simulator.run_until(kSecond + 6 * kMillisecond);
  EXPECT_EQ(p1.received.size(), 1u);
}

TEST_F(SimulatorTest, TrafficCountersTrackSendsAndReceives) {
  Simulator simulator(topology_.graph, make_ideal_radio(), 1);
  for (wsn::NodeId n = 0; n < 3; ++n) {
    simulator.add_process(n, std::make_unique<RelayProcess>());
  }
  simulator.run_until(10 * kSecond);
  EXPECT_GT(simulator.traffic(0).sent, 0u);
  EXPECT_GT(simulator.traffic(1).received, 0u);
  EXPECT_EQ(simulator.total_sent(),
            simulator.traffic(0).sent + simulator.traffic(1).sent +
                simulator.traffic(2).sent);
  EXPECT_EQ(simulator.sends_by_type().at("PING"), simulator.total_sent());
  EXPECT_GT(simulator.traffic(0).bytes_sent, 0u);
}

TEST_F(SimulatorTest, DeterministicAcrossIdenticalRuns) {
  auto run = [&] {
    Simulator simulator(topology_.graph, make_lossy_radio(0.3), 99);
    for (wsn::NodeId n = 0; n < 3; ++n) {
      simulator.add_process(n, std::make_unique<RelayProcess>());
    }
    simulator.run_until(10 * kSecond);
    return std::pair{simulator.total_sent(), simulator.events_executed()};
  };
  EXPECT_EQ(run(), run());
}

TEST_F(SimulatorTest, LossyRadioDropsSomeDeliveries) {
  Simulator ideal(topology_.graph, make_ideal_radio(), 5);
  Simulator lossy(topology_.graph, make_lossy_radio(0.6), 5);
  for (wsn::NodeId n = 0; n < 3; ++n) {
    ideal.add_process(n, std::make_unique<RelayProcess>());
    lossy.add_process(n, std::make_unique<RelayProcess>());
  }
  ideal.run_until(10 * kSecond);
  lossy.run_until(10 * kSecond);
  EXPECT_LT(lossy.total_sent(), ideal.total_sent());
}

struct CountingObserver final : TransmissionObserver {
  int transmissions = 0;
  void on_transmission(wsn::NodeId, const Message&, SimTime) override {
    ++transmissions;
  }
};

TEST_F(SimulatorTest, ObserverSeesEveryTransmission) {
  Simulator simulator(topology_.graph, make_lossy_radio(0.5), 3);
  CountingObserver observer;
  simulator.add_observer(&observer);
  for (wsn::NodeId n = 0; n < 3; ++n) {
    simulator.add_process(n, std::make_unique<RelayProcess>());
  }
  simulator.run_until(10 * kSecond);
  // Observers see raw transmissions regardless of per-link loss.
  EXPECT_EQ(observer.transmissions,
            static_cast<int>(simulator.total_sent()));
}

class TimerProcess final : public Process {
 public:
  void on_start() override {
    set_timer(1, kSecond);
    set_timer(2, kSecond);
    set_timer(2, 2 * kSecond);  // re-arm supersedes
    set_timer(3, kSecond);
    cancel_timer(3);
    // Cancelling timers that were NEVER armed must be a silent no-op: it
    // may not fabricate generation state (the old per-process map grew an
    // entry here) and a later arm of the same id must still fire.
    cancel_timer(4);
    cancel_timer(1000000);
    set_timer(4, kSecond);
  }
  void on_timer(int timer_id) override { fired.push_back({timer_id, now()}); }
  void on_message(wsn::NodeId, const Message&) override {}

  std::vector<std::pair<int, SimTime>> fired;
};

TEST(SimulatorTimerTest, RearmAndCancelSemantics) {
  const wsn::Topology solo = wsn::make_line(2);
  Simulator simulator(solo.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<TimerProcess>());
  simulator.add_process(1, std::make_unique<TimerProcess>());
  simulator.run_until(10 * kSecond);
  const auto& fired = dynamic_cast<TimerProcess&>(simulator.process(0)).fired;
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair{1, kSecond}));
  EXPECT_EQ(fired[1], (std::pair{4, kSecond}));
  EXPECT_EQ(fired[2], (std::pair{2, 2 * kSecond}));
}

class BadTimerProcess final : public Process {
 public:
  void on_start() override {
    EXPECT_THROW(set_timer(-1, kSecond), std::invalid_argument);
    EXPECT_THROW(set_timer(1, -kSecond), std::invalid_argument);
    cancel_timer(-1);  // negative ids are a no-op for cancel
    set_timer(1, kSecond);
  }
  void on_timer(int) override {
    // now() is past zero here, so the maximum delay must be rejected:
    // unchecked, now() + delay would wrap SimTime (signed overflow) and
    // sail past call_at's past-time check as a bogus early event.
    EXPECT_THROW(set_timer(1, std::numeric_limits<SimTime>::max()),
                 std::overflow_error);
    // The largest still-representable delay remains accepted.
    set_timer(2, std::numeric_limits<SimTime>::max() - now());
    ran = true;
  }
  void on_message(wsn::NodeId, const Message&) override {}

  bool ran = false;
};

TEST(SimulatorTimerTest, RejectsBadTimerArguments) {
  const wsn::Topology solo = wsn::make_line(2);
  Simulator simulator(solo.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<BadTimerProcess>());
  simulator.add_process(1, std::make_unique<BadTimerProcess>());
  simulator.run_until(2 * kSecond);
  EXPECT_TRUE(dynamic_cast<BadTimerProcess&>(simulator.process(0)).ran);
}

TEST(SimulatorApiTest, RegistrationErrors) {
  const wsn::Topology line = wsn::make_line(2);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  EXPECT_THROW(simulator.add_process(5, std::make_unique<TimerProcess>()),
               std::out_of_range);
  simulator.add_process(0, std::make_unique<TimerProcess>());
  EXPECT_THROW(simulator.add_process(0, std::make_unique<TimerProcess>()),
               std::logic_error);
  EXPECT_THROW(simulator.add_process(1, nullptr), std::invalid_argument);
  EXPECT_THROW(simulator.add_observer(nullptr), std::invalid_argument);
  EXPECT_THROW((void)simulator.process(1), std::out_of_range);
  EXPECT_THROW(Simulator(line.graph, nullptr, 1), std::invalid_argument);
}

TEST(SimulatorApiTest, CallAtRejectsPast) {
  const wsn::Topology line = wsn::make_line(2);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<TimerProcess>());
  simulator.add_process(1, std::make_unique<TimerProcess>());
  simulator.run_until(kSecond);
  EXPECT_THROW(simulator.call_at(0, [] {}), std::invalid_argument);
}

TEST(SimulatorApiTest, CallAfterRejectsOverflowingDelay) {
  const wsn::Topology line = wsn::make_line(2);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<TimerProcess>());
  simulator.add_process(1, std::make_unique<TimerProcess>());
  simulator.run_until(kSecond);  // now > 0, so max delay wraps
  EXPECT_THROW(simulator.call_after(std::numeric_limits<SimTime>::max(), [] {}),
               std::overflow_error);
  // A far-future but representable callback is still fine.
  simulator.call_after(std::numeric_limits<SimTime>::max() - simulator.now(),
                       [] {});
}

TEST(SimulatorApiTest, StopHaltsRun) {
  const wsn::Topology line = wsn::make_line(2);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<TimerProcess>());
  simulator.add_process(1, std::make_unique<TimerProcess>());
  simulator.call_after(kSecond / 2, [&] { simulator.stop(); });
  simulator.run_until(10 * kSecond);
  EXPECT_TRUE(simulator.stopped());
  EXPECT_EQ(simulator.now(), kSecond / 2);
}

TEST(SimulatorApiTest, RunUntilAdvancesClockToEnd) {
  const wsn::Topology line = wsn::make_line(2);
  Simulator simulator(line.graph, make_ideal_radio(), 1);
  simulator.add_process(0, std::make_unique<TimerProcess>());
  simulator.add_process(1, std::make_unique<TimerProcess>());
  simulator.run_until(5 * kSecond);
  EXPECT_EQ(simulator.now(), 5 * kSecond);
}

}  // namespace
}  // namespace slpdas::sim
