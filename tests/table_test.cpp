// Tests for console/CSV table rendering used by the bench harnesses.
#include "slpdas/metrics/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace slpdas::metrics {
namespace {

TEST(TableTest, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RowArityEnforced) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
  table.add_row({"1", "2"});
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, PrintAlignsColumns) {
  Table table({"size", "capture"});
  table.add_row({"11", "30.0%"});
  table.add_row({"21", "7.5%"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| size | capture |"), std::string::npos);
  EXPECT_NE(text.find("| 11   | 30.0%   |"), std::string::npos);
  EXPECT_NE(text.find("|------|"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"with,comma", "quote\"inside"});
  std::ostringstream out;
  table.write_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name,value\n"), std::string::npos);
  EXPECT_NE(text.find("plain,1\n"), std::string::npos);
  EXPECT_NE(text.find("\"with,comma\",\"quote\"\"inside\"\n"),
            std::string::npos);
}

TEST(TableTest, NumericCells) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(2.0, 0), "2");
  EXPECT_EQ(Table::percent_cell(0.305), "30.5%");
  EXPECT_EQ(Table::percent_cell(1.0, 0), "100%");
}

}  // namespace
}  // namespace slpdas::metrics
