// Failure-injection tests: the setup protocol must converge to a valid
// weak DAS despite lost, duplicated and reordered control messages.
#include <gtest/gtest.h>

#include "slpdas/verify/das_checker.hpp"
#include "test_util.hpp"

namespace slpdas {
namespace {

using test::fast_parameters;
using test::make_protectionless_net;
using test::make_slp_net;
using test::run_setup;

TEST(FailureInjectionTest, ConvergesUnderModerateUniformLoss) {
  int complete = 0;
  const int seeds = 8;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(40),
                                       seed, sim::make_lossy_radio(0.10));
    run_setup(net);
    const auto schedule = das::extract_schedule(*net.simulator);
    if (schedule.complete() &&
        verify::check_weak_das(net.topology.graph, schedule, net.topology.sink)
            .ok()) {
      ++complete;
    }
  }
  // 10% i.i.d. loss with DT retransmissions: essentially every run must
  // still converge to a valid weak DAS.
  EXPECT_GE(complete, seeds - 1);
}

TEST(FailureInjectionTest, ConvergesUnderHeavyLossGivenMoreTime) {
  auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(60),
                                     3, sim::make_lossy_radio(0.25));
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  EXPECT_TRUE(schedule.complete());
  const auto weak =
      verify::check_weak_das(net.topology.graph, schedule, net.topology.sink);
  EXPECT_TRUE(weak.ok()) << weak.summary();
}

TEST(FailureInjectionTest, SlpSurvivesLossySearchPhase) {
  // Even when SEARCH/CHANGE messages can be lost, the schedule must remain
  // a valid weak DAS (the decoy is best-effort; validity is mandatory).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto net = make_slp_net(wsn::make_grid(7), fast_parameters(40), seed,
                            sim::make_lossy_radio(0.15));
    run_setup(net);
    const auto schedule = das::extract_schedule(*net.simulator);
    EXPECT_TRUE(schedule.complete()) << "seed " << seed;
    const auto weak = verify::check_weak_das(net.topology.graph, schedule,
                                             net.topology.sink);
    EXPECT_TRUE(weak.ok()) << "seed " << seed << ": " << weak.summary();
  }
}

/// A radio that duplicates every Nth delivery decision window by always
/// delivering, and otherwise randomly drops: exercises duplicate-ish and
/// reordered arrivals through jittered control traffic.
class FlakyRadio final : public sim::RadioModel {
 public:
  bool delivered(wsn::NodeId, wsn::NodeId, sim::SimTime, Rng& rng) override {
    ++calls_;
    if (calls_ % 7 == 0) {
      return true;
    }
    return !rng.bernoulli(0.2);
  }

 private:
  std::uint64_t calls_ = 0;
};

TEST(FailureInjectionTest, ConvergesUnderPatternedFlakiness) {
  auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(48), 9,
                                     std::make_unique<FlakyRadio>());
  run_setup(net);
  const auto schedule = das::extract_schedule(*net.simulator);
  EXPECT_TRUE(schedule.complete());
  EXPECT_TRUE(verify::check_weak_das(net.topology.graph, schedule,
                                     net.topology.sink)
                  .ok());
}

TEST(FailureInjectionTest, BurstDuringSetupDelaysButDoesNotCorrupt) {
  // A long interference burst right at the start of setup: convergence may
  // be late but never produces an order violation.
  sim::CasinoLabParams noise;
  noise.quiet_loss = 0.01;
  noise.burst_loss = 0.75;
  noise.mean_quiet = sim::from_seconds(3.0);
  noise.mean_burst = sim::from_seconds(1.0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto net = make_protectionless_net(wsn::make_grid(5), fast_parameters(60),
                                       seed, sim::make_casino_lab_noise(noise));
    run_setup(net);
    const auto schedule = das::extract_schedule(*net.simulator);
    if (!schedule.complete()) {
      continue;  // a late run is acceptable; corruption is not
    }
    const auto weak = verify::check_weak_das(net.topology.graph, schedule,
                                             net.topology.sink);
    EXPECT_TRUE(weak.ok()) << "seed " << seed << ": " << weak.summary();
  }
}

}  // namespace
}  // namespace slpdas
