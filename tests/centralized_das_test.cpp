// Tests for the centralized reference scheduler: its output must satisfy
// the strong DAS definition on every topology we throw at it.
#include "slpdas/das/centralized.hpp"

#include <gtest/gtest.h>

#include "slpdas/verify/das_checker.hpp"
#include "slpdas/wsn/paths.hpp"
#include "slpdas/wsn/topology.hpp"

namespace slpdas::das {
namespace {

TEST(CentralizedDasTest, SinkAnchoredAtRequestedSlot) {
  const wsn::Topology grid = wsn::make_grid(5);
  const auto result = build_centralized_das(grid.graph, grid.sink, 100);
  EXPECT_EQ(result.schedule.slot(grid.sink), 100);
  EXPECT_EQ(result.hop[static_cast<std::size_t>(grid.sink)], 0);
  EXPECT_EQ(result.parent[static_cast<std::size_t>(grid.sink)], wsn::kNoNode);
}

TEST(CentralizedDasTest, CompleteAssignment) {
  const wsn::Topology grid = wsn::make_grid(7);
  const auto result = build_centralized_das(grid.graph, grid.sink);
  EXPECT_TRUE(result.schedule.complete());
}

TEST(CentralizedDasTest, ParentsPointStrictlyCloserToSink) {
  const wsn::Topology grid = wsn::make_grid(7);
  const auto result = build_centralized_das(grid.graph, grid.sink);
  const auto distance = wsn::bfs_distances(grid.graph, grid.sink);
  for (wsn::NodeId node = 0; node < grid.graph.node_count(); ++node) {
    if (node == grid.sink) {
      continue;
    }
    const wsn::NodeId parent = result.parent[static_cast<std::size_t>(node)];
    ASSERT_NE(parent, wsn::kNoNode);
    EXPECT_TRUE(grid.graph.has_edge(node, parent));
    EXPECT_EQ(distance[static_cast<std::size_t>(parent)],
              distance[static_cast<std::size_t>(node)] - 1);
    // Children transmit strictly before their parents.
    EXPECT_LT(result.schedule.slot(node), result.schedule.slot(parent));
  }
}

TEST(CentralizedDasTest, DeterministicConstruction) {
  const wsn::Topology grid = wsn::make_grid(5);
  EXPECT_EQ(build_centralized_das(grid.graph, grid.sink).schedule,
            build_centralized_das(grid.graph, grid.sink).schedule);
}

TEST(CentralizedDasTest, ErrorsOnBadInput) {
  const wsn::Topology grid = wsn::make_grid(3);
  EXPECT_THROW(build_centralized_das(grid.graph, 99), std::out_of_range);
  wsn::Graph disconnected(4);
  disconnected.add_edge(0, 1);
  EXPECT_THROW(build_centralized_das(disconnected, 0), std::invalid_argument);
}

class CentralizedStrongDasSweep
    : public ::testing::TestWithParam<wsn::Topology> {};

TEST_P(CentralizedStrongDasSweep, SatisfiesStrongDas) {
  const wsn::Topology& topology = GetParam();
  const auto result = build_centralized_das(topology.graph, topology.sink);
  const auto check =
      verify::check_strong_das(topology.graph, result.schedule, topology.sink);
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST_P(CentralizedStrongDasSweep, NonCollidingEverywhere) {
  const wsn::Topology& topology = GetParam();
  const auto result = build_centralized_das(topology.graph, topology.sink);
  for (wsn::NodeId node = 0; node < topology.graph.node_count(); ++node) {
    EXPECT_TRUE(verify::is_noncolliding(topology.graph, result.schedule, node,
                                        topology.sink))
        << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, CentralizedStrongDasSweep,
    ::testing::Values(wsn::make_grid(3), wsn::make_grid(5), wsn::make_grid(7),
                      wsn::make_grid(11), wsn::make_line(2), wsn::make_line(9),
                      wsn::make_ring(8), wsn::make_ring(13),
                      wsn::make_random_unit_disk({.node_count = 50,
                                                  .area_side = 50.0,
                                                  .radio_range = 12.0,
                                                  .seed = 3}),
                      wsn::make_random_unit_disk({.node_count = 80,
                                                  .area_side = 70.0,
                                                  .radio_range = 13.0,
                                                  .seed = 21})),
    [](const ::testing::TestParamInfo<wsn::Topology>& info) {
      return "t" + std::to_string(info.index) + "_n" +
             std::to_string(info.param.graph.node_count());
    });

}  // namespace
}  // namespace slpdas::das
