// Tests for DOT export and ASCII grid rendering.
#include "slpdas/mac/render.hpp"

#include <gtest/gtest.h>

namespace slpdas::mac {
namespace {

TEST(DotExportTest, ContainsNodesAndEdges) {
  const wsn::Topology line = wsn::make_line(3);
  const std::string dot = to_dot(line);
  EXPECT_NE(dot.find("graph wsn {"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2;"), std::string::npos);
  // Each undirected edge appears once.
  EXPECT_EQ(dot.find("n1 -- n0;"), std::string::npos);
}

TEST(DotExportTest, MarksSourceAndSink) {
  const wsn::Topology line = wsn::make_line(3);  // source 0, sink 2
  const std::string dot = to_dot(line);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST(DotExportTest, ScheduleLabelsAndHighlights) {
  const wsn::Topology line = wsn::make_line(3);
  Schedule schedule(3);
  schedule.set_slot(0, 7);
  DotOptions options;
  options.schedule = &schedule;
  options.highlight = {1};
  const std::string dot = to_dot(line, options);
  EXPECT_NE(dot.find("s7"), std::string::npos);
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);
}

TEST(DotExportTest, PositionsPinned) {
  const wsn::Topology grid = wsn::make_grid(3, 1.0);
  EXPECT_NE(to_dot(grid).find("pos=\""), std::string::npos);
  DotOptions options;
  options.include_positions = false;
  EXPECT_EQ(to_dot(grid, options).find("pos=\""), std::string::npos);
}

TEST(AsciiRenderTest, PlainMap) {
  const wsn::Topology grid = wsn::make_grid(3);
  const std::string map = render_grid_ascii(grid, 3, 3);
  EXPECT_EQ(map,
            "S . .\n"
            ". K .\n"
            ". . .\n");
}

TEST(AsciiRenderTest, HighlightMarks) {
  const wsn::Topology grid = wsn::make_grid(3);
  const std::string map = render_grid_ascii(grid, 3, 3, nullptr, {2, 5});
  EXPECT_NE(map.find('#'), std::string::npos);
}

TEST(AsciiRenderTest, ScheduleValues) {
  const wsn::Topology grid = wsn::make_grid(3);
  Schedule schedule(9);
  for (wsn::NodeId n = 0; n < 9; ++n) {
    schedule.set_slot(n, 10 + n);
  }
  const std::string map = render_grid_ascii(grid, 3, 3, &schedule);
  EXPECT_NE(map.find("10S"), std::string::npos);  // source tag
  EXPECT_NE(map.find("14K"), std::string::npos);  // sink tag
  EXPECT_NE(map.find("18"), std::string::npos);
}

TEST(AsciiRenderTest, DimensionMismatchRejected) {
  const wsn::Topology grid = wsn::make_grid(3);
  EXPECT_THROW((void)render_grid_ascii(grid, 4, 3), std::invalid_argument);
}

}  // namespace
}  // namespace slpdas::mac
